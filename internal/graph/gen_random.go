package graph

import (
	"fmt"

	"cobrawalk/internal/rng"
)

// RandomRegular returns a uniformly-ish random simple r-regular graph on n
// vertices using the Steger–Wormald pairing algorithm: maintain n·r stubs,
// repeatedly pair two random unused stubs whose pairing keeps the graph
// simple, and restart the whole construction in the rare event the final
// stubs admit no simple completion. For r = O(n^{1/3}) the output
// distribution is asymptotically uniform, and random r-regular graphs are
// near-Ramanujan w.h.p. (λ ≈ 2√(r-1)/r), which is what makes this family
// the paper's canonical expander.
//
// n·r must be even and r must satisfy 0 <= r < n. Connectivity is not
// guaranteed by the model (though it holds w.h.p. for r >= 3); callers that
// need connectivity should use RandomRegularConnected.
func RandomRegular(n, r int, rand *rng.Rand) (*Graph, error) {
	if n <= 0 {
		return nil, errEmptyGraph
	}
	if r < 0 || r >= n {
		return nil, fmt.Errorf("graph: degree %d out of range [0,%d)", r, n)
	}
	if n*r%2 != 0 {
		return nil, fmt.Errorf("graph: n*r = %d*%d is odd; no regular graph exists", n, r)
	}
	if r == 0 {
		return NewBuilder(n, 0).Build(fmt.Sprintf("random-regular(n=%d,r=0)", n))
	}
	const maxRestarts = 200
	for attempt := 0; attempt < maxRestarts; attempt++ {
		pairs, ok := pairStubs(n, r, rand)
		if !ok {
			continue
		}
		b := NewBuilder(n, n*r/2)
		for _, p := range pairs {
			b.AddEdge(p[0], p[1])
		}
		g, err := b.Build(fmt.Sprintf("random-regular(n=%d,r=%d)", n, r))
		if err != nil {
			return nil, err
		}
		return g, nil
	}
	return nil, fmt.Errorf("graph: random regular generation failed after %d restarts (n=%d, r=%d)", maxRestarts, n, r)
}

// pairStubs runs one attempt of the Steger–Wormald pairing. It returns the
// matched edge list, or ok=false if the attempt got stuck and the caller
// should restart.
func pairStubs(n, r int, rand *rng.Rand) ([][2]int32, bool) {
	total := n * r
	stubs := make([]int32, total)
	for i := range stubs {
		stubs[i] = int32(i / r)
	}
	// adj[v] lists current neighbours of v (small: at most r entries).
	adj := make([][]int32, n)
	adjacent := func(u, v int32) bool {
		a := adj[u]
		if len(adj[v]) < len(a) {
			a, v = adj[v], u
		}
		for _, w := range a {
			if w == v {
				return true
			}
		}
		return false
	}
	pairs := make([][2]int32, 0, total/2)
	live := total // stubs[0:live] are unused
	failures := 0
	for live > 0 {
		i := rand.Intn(live)
		j := rand.Intn(live)
		u, v := stubs[i], stubs[j]
		if u == v || adjacent(u, v) {
			failures++
			// When random probing stalls, check exhaustively whether any
			// suitable pair remains among the live stubs; if not, restart.
			if failures > 16*live+64 {
				if !anySuitablePair(stubs[:live], adjacent) {
					return nil, false
				}
				failures = 0
			}
			continue
		}
		failures = 0
		pairs = append(pairs, [2]int32{u, v})
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
		// Remove the two stubs (order matters: remove the larger index
		// first so the swap does not disturb the other position).
		if i < j {
			i, j = j, i
		}
		stubs[i] = stubs[live-1]
		live--
		stubs[j] = stubs[live-1]
		live--
	}
	return pairs, true
}

func anySuitablePair(live []int32, adjacent func(u, v int32) bool) bool {
	for i := 0; i < len(live); i++ {
		for j := i + 1; j < len(live); j++ {
			if live[i] != live[j] && !adjacent(live[i], live[j]) {
				return true
			}
		}
	}
	return false
}

// RandomRegularConnected draws random r-regular graphs until one is
// connected. For r >= 3 the first draw is connected w.h.p., so the loop is
// cheap; a retry cap guards the (r <= 2) cases where connectivity is
// unlikely or impossible.
func RandomRegularConnected(n, r int, rand *rng.Rand) (*Graph, error) {
	const maxDraws = 100
	for i := 0; i < maxDraws; i++ {
		g, err := RandomRegular(n, r, rand)
		if err != nil {
			return nil, err
		}
		if g.IsConnected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: no connected %d-regular graph on %d vertices after %d draws", r, n, maxDraws)
}

// ErdosRenyi returns a G(n, p) random graph: each of the C(n,2) possible
// edges is present independently with probability p. Used by tests that
// need unstructured irregular graphs. For small p the generator uses
// geometric edge skipping, so the cost is O(n + m) rather than O(n²).
func ErdosRenyi(n int, p float64, rand *rng.Rand) (*Graph, error) {
	if n <= 0 {
		return nil, errEmptyGraph
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("graph: edge probability %v out of [0,1]", p)
	}
	b := NewBuilder(n, int(p*float64(n)*float64(n-1)/2)+16)
	if p == 0 {
		return b.Build(fmt.Sprintf("erdos-renyi(n=%d,p=%g)", n, p))
	}
	if p == 1 {
		return Complete(n)
	}
	// Enumerate pairs in row-major order, skipping ahead by Geometric(p)
	// misses between hits.
	total := int64(n) * int64(n-1) / 2
	idx := int64(rand.Geometric(p))
	for idx < total {
		u, v := unrankPair(idx, n)
		b.AddEdge(u, v)
		idx += 1 + int64(rand.Geometric(p))
	}
	return b.Build(fmt.Sprintf("erdos-renyi(n=%d,p=%g)", n, p))
}

// unrankPair maps a linear index in [0, C(n,2)) to the pair (u, v), u < v,
// enumerated in row-major order: (0,1), (0,2), ..., (0,n-1), (1,2), ...
func unrankPair(idx int64, n int) (int32, int32) {
	u := int64(0)
	rowLen := int64(n - 1)
	for idx >= rowLen {
		idx -= rowLen
		u++
		rowLen--
	}
	return int32(u), int32(u + 1 + idx)
}
