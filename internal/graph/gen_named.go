package graph

// Petersen returns the Petersen graph: 10 vertices, 3-regular, girth 5.
// Its transition-matrix eigenvalues are {1, 1/3 (×5), -2/3 (×4)}, so
// λ_max = 2/3 exactly — a perfect fixture for validating the spectral
// toolkit and for the exact duality computation of experiment E4.
func Petersen() (*Graph, error) {
	// Outer 5-cycle 0..4, inner pentagram 5..9, spokes i — i+5.
	pairs := [][2]int32{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, // outer cycle
		{5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5}, // inner pentagram
		{0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9}, // spokes
	}
	return FromEdges("petersen", 10, pairs)
}

// PrismGraph returns the triangular prism Y_3 = K_3 × K_2 (6 vertices,
// 3-regular): two triangles joined by a perfect matching.
func PrismGraph() (*Graph, error) {
	pairs := [][2]int32{
		{0, 1}, {1, 2}, {2, 0},
		{3, 4}, {4, 5}, {5, 3},
		{0, 3}, {1, 4}, {2, 5},
	}
	return FromEdges("prism", 6, pairs)
}

// KneserPetersenComplement is omitted; use Complete, Cycle, Hypercube,
// Petersen and PrismGraph as the canonical deterministic fixtures.
