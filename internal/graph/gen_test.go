package graph

import (
	"fmt"
	"testing"
	"testing/quick"

	"cobrawalk/internal/rng"
)

// checkInvariants verifies the structural invariants every generator must
// establish, plus the caller's expectations about size and regularity
// (wantReg < 0 means "irregular allowed").
func checkInvariants(t *testing.T, g *Graph, wantN, wantM, wantReg int) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("%s: invalid: %v", g.Name(), err)
	}
	if g.N() != wantN {
		t.Fatalf("%s: N = %d, want %d", g.Name(), g.N(), wantN)
	}
	if wantM >= 0 && g.M() != wantM {
		t.Fatalf("%s: M = %d, want %d", g.Name(), g.M(), wantM)
	}
	if wantReg >= 0 {
		r, err := g.Regularity()
		if err != nil {
			t.Fatalf("%s: not regular: %v (hist %v)", g.Name(), err, g.DegreeHistogram())
		}
		if r != wantReg {
			t.Fatalf("%s: regularity = %d, want %d", g.Name(), r, wantReg)
		}
	}
	// Handshake lemma: sum of degrees = 2M.
	sum := 0
	for v := int32(0); v < int32(g.N()); v++ {
		sum += g.Degree(v)
	}
	if sum != 2*g.M() {
		t.Fatalf("%s: handshake violated: sum deg = %d, 2M = %d", g.Name(), sum, 2*g.M())
	}
}

func TestComplete(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 17, 64} {
		g := must(t)(Complete(n))
		checkInvariants(t, g, n, n*(n-1)/2, n-1)
		if n > 1 && g.Diameter() != 1 {
			t.Fatalf("K%d diameter = %d", n, g.Diameter())
		}
	}
	if _, err := Complete(0); err == nil {
		t.Fatal("Complete(0) should fail")
	}
}

func TestCycle(t *testing.T) {
	for _, n := range []int{3, 4, 5, 100} {
		g := must(t)(Cycle(n))
		checkInvariants(t, g, n, n, 2)
		if g.Diameter() != n/2 {
			t.Fatalf("C%d diameter = %d, want %d", n, g.Diameter(), n/2)
		}
		if got, want := g.IsBipartite(), n%2 == 0; got != want {
			t.Fatalf("C%d bipartite = %v, want %v", n, got, want)
		}
	}
	if _, err := Cycle(2); err == nil {
		t.Fatal("Cycle(2) should fail")
	}
}

func TestPathAndStar(t *testing.T) {
	p := must(t)(Path(6))
	checkInvariants(t, p, 6, 5, -1)
	if p.Diameter() != 5 {
		t.Fatalf("P6 diameter = %d", p.Diameter())
	}
	s := must(t)(Star(7))
	checkInvariants(t, s, 7, 6, -1)
	if s.Diameter() != 2 {
		t.Fatalf("star diameter = %d", s.Diameter())
	}
}

func TestCirculant(t *testing.T) {
	g := must(t)(Circulant(10, []int{1, 2}))
	checkInvariants(t, g, 10, 20, 4)
	// Offset n/2 contributes one edge per vertex: degree 2*1 + 1 = 3.
	h := must(t)(Circulant(8, []int{1, 4}))
	checkInvariants(t, h, 8, 12, 3)
	if _, err := Circulant(10, []int{0}); err == nil {
		t.Fatal("offset 0 should fail")
	}
	if _, err := Circulant(10, []int{6}); err == nil {
		t.Fatal("offset > n/2 should fail")
	}
	if _, err := Circulant(10, []int{2, 2}); err == nil {
		t.Fatal("duplicate offset should fail")
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := must(t)(CompleteBipartite(3, 3))
	checkInvariants(t, g, 6, 9, 3)
	if !g.IsBipartite() {
		t.Fatal("K33 not bipartite?")
	}
	h := must(t)(CompleteBipartite(2, 5))
	checkInvariants(t, h, 7, 10, -1)
	if _, err := CompleteBipartite(0, 3); err == nil {
		t.Fatal("empty side should fail")
	}
}

func TestHypercube(t *testing.T) {
	for d := 1; d <= 8; d++ {
		n := 1 << d
		g := must(t)(Hypercube(d))
		checkInvariants(t, g, n, n*d/2, d)
		if !g.IsBipartite() {
			t.Fatalf("Q%d should be bipartite", d)
		}
		if g.Diameter() != d {
			t.Fatalf("Q%d diameter = %d, want %d", d, g.Diameter(), d)
		}
	}
	if _, err := Hypercube(0); err == nil {
		t.Fatal("Hypercube(0) should fail")
	}
	if _, err := Hypercube(28); err == nil {
		t.Fatal("Hypercube(28) should fail (id overflow)")
	}
}

func TestTorus(t *testing.T) {
	g := must(t)(Torus(4, 4))
	checkInvariants(t, g, 16, 32, 4)
	if g.Diameter() != 4 {
		t.Fatalf("4x4 torus diameter = %d, want 4", g.Diameter())
	}
	g3 := must(t)(Torus(3, 4, 5))
	checkInvariants(t, g3, 60, 180, 6)
	ring := must(t)(Torus(9))
	checkInvariants(t, ring, 9, 9, 2) // 1-D torus is a cycle
	if _, err := Torus(2, 4); err == nil {
		t.Fatal("side 2 should fail (parallel edges)")
	}
	if _, err := Torus(); err == nil {
		t.Fatal("no sides should fail")
	}
}

func TestGrid(t *testing.T) {
	g := must(t)(Grid(3, 4))
	checkInvariants(t, g, 12, 17, -1) // 3*3 + 4*2 = 9+8 = 17 edges
	if g.Diameter() != 5 {
		t.Fatalf("3x4 grid diameter = %d, want 5", g.Diameter())
	}
	line := must(t)(Grid(7))
	checkInvariants(t, line, 7, 6, -1)
	single := must(t)(Grid(1, 1))
	checkInvariants(t, single, 1, 0, 0)
}

func TestPetersen(t *testing.T) {
	g := must(t)(Petersen())
	checkInvariants(t, g, 10, 15, 3)
	if g.Diameter() != 2 {
		t.Fatalf("Petersen diameter = %d, want 2", g.Diameter())
	}
	if g.IsBipartite() {
		t.Fatal("Petersen is not bipartite")
	}
}

func TestPrism(t *testing.T) {
	g := must(t)(PrismGraph())
	checkInvariants(t, g, 6, 9, 3)
	if g.IsBipartite() {
		t.Fatal("prism contains triangles")
	}
}

func TestPaley(t *testing.T) {
	for _, q := range []int{5, 13, 17, 29, 101} {
		g := must(t)(Paley(q))
		checkInvariants(t, g, q, q*(q-1)/4, (q-1)/2)
		if !g.IsConnected() {
			t.Fatalf("Paley(%d) disconnected", q)
		}
	}
	// Paley(5) is the 5-cycle.
	g := must(t)(Paley(5))
	if g.M() != 5 || !g.IsRegular() {
		t.Fatal("Paley(5) should be C5")
	}
	for _, bad := range []int{4, 7, 9, 15, 21} { // non-prime or ≢1 mod 4
		if _, err := Paley(bad); err == nil {
			t.Fatalf("Paley(%d) should fail", bad)
		}
	}
}

func TestMargulis(t *testing.T) {
	for _, m := range []int{2, 3, 5, 8} {
		g := must(t)(Margulis(m))
		if g.N() != m*m {
			t.Fatalf("Margulis(%d): N = %d", m, g.N())
		}
		if !g.IsConnected() {
			t.Fatalf("Margulis(%d) disconnected", m)
		}
		if g.MaxDegree() > 8 {
			t.Fatalf("Margulis(%d) degree %d > 8", m, g.MaxDegree())
		}
	}
	if _, err := Margulis(1); err == nil {
		t.Fatal("Margulis(1) should fail")
	}
}

func TestRingOfCliques(t *testing.T) {
	g := must(t)(RingOfCliques(4, 5))
	checkInvariants(t, g, 20, 4*10+4, -1)
	if !g.IsConnected() {
		t.Fatal("ring of cliques disconnected")
	}
	if _, err := RingOfCliques(2, 5); err == nil {
		t.Fatal("k=2 should fail")
	}
}

func TestBarbell(t *testing.T) {
	g := must(t)(Barbell(5, 3))
	checkInvariants(t, g, 13, 2*10+4, -1)
	if !g.IsConnected() {
		t.Fatal("barbell disconnected")
	}
	h := must(t)(Barbell(4, 0))
	checkInvariants(t, h, 8, 2*6+1, -1)
}

func TestRandomRegular(t *testing.T) {
	r := rng.New(42)
	cases := []struct{ n, deg int }{
		{10, 3}, {16, 4}, {50, 3}, {100, 8}, {64, 16}, {200, 5}, {6, 5},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("n%d_r%d", tc.n, tc.deg), func(t *testing.T) {
			g, err := RandomRegular(tc.n, tc.deg, r)
			g = must(t)(g, err)
			checkInvariants(t, g, tc.n, tc.n*tc.deg/2, tc.deg)
		})
	}
	if _, err := RandomRegular(5, 3, r); err == nil {
		t.Fatal("odd n*r should fail")
	}
	if _, err := RandomRegular(5, 5, r); err == nil {
		t.Fatal("r >= n should fail")
	}
	g, err := RandomRegular(7, 0, r)
	g = must(t)(g, err)
	if g.M() != 0 {
		t.Fatal("0-regular graph should be empty")
	}
}

func TestRandomRegularConnected(t *testing.T) {
	r := rng.New(7)
	g, err := RandomRegularConnected(128, 3, r)
	g = must(t)(g, err)
	if !g.IsConnected() {
		t.Fatal("RandomRegularConnected returned disconnected graph")
	}
	checkInvariants(t, g, 128, 192, 3)
}

func TestRandomRegularDistributionSmoke(t *testing.T) {
	// On n=6, r=2 the generator must produce only disjoint-cycle covers
	// (C6, C3+C3, C4 would leave stubs...), and every output must be a
	// valid 2-regular graph. Also check both connected and disconnected
	// outcomes occur, i.e. the sampler is not collapsed onto one graph.
	r := rng.New(11)
	connected, disconnected := 0, 0
	for i := 0; i < 200; i++ {
		g, err := RandomRegular(6, 2, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		if !g.IsRegular() {
			t.Fatal("non-regular output")
		}
		if g.IsConnected() {
			connected++
		} else {
			disconnected++
		}
	}
	if connected == 0 || disconnected == 0 {
		t.Fatalf("sampler collapsed: connected=%d disconnected=%d", connected, disconnected)
	}
}

func TestErdosRenyi(t *testing.T) {
	r := rng.New(13)
	g, err := ErdosRenyi(100, 0.1, r)
	g = must(t)(g, err)
	// Expected edges = C(100,2)*0.1 = 495; allow generous slack (4 sigma
	// of binomial is ~85).
	if g.M() < 350 || g.M() > 650 {
		t.Fatalf("G(100,0.1) has %d edges, expected ~495", g.M())
	}
	empty, err := ErdosRenyi(10, 0, r)
	empty = must(t)(empty, err)
	if empty.M() != 0 {
		t.Fatal("G(n,0) should have no edges")
	}
	full, err := ErdosRenyi(10, 1, r)
	full = must(t)(full, err)
	if full.M() != 45 {
		t.Fatal("G(n,1) should be complete")
	}
	if _, err := ErdosRenyi(10, 1.5, r); err == nil {
		t.Fatal("p > 1 should fail")
	}
}

func TestUnrankPair(t *testing.T) {
	n := 7
	idx := int64(0)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			gu, gv := unrankPair(idx, n)
			if int(gu) != u || int(gv) != v {
				t.Fatalf("unrankPair(%d) = (%d,%d), want (%d,%d)", idx, gu, gv, u, v)
			}
			idx++
		}
	}
}

// Property: every generator output validates, for fuzzed sizes.
func TestGeneratorInvariantsQuick(t *testing.T) {
	r := rng.New(99)
	f := func(nRaw, rRaw uint8) bool {
		n := int(nRaw%60) + 4
		deg := int(rRaw % 6) // 0..5
		if deg >= n {
			deg = n - 1
		}
		if n*deg%2 != 0 {
			deg-- // make n*r even
		}
		if deg < 0 {
			return true
		}
		g, err := RandomRegular(n, deg, r)
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		reg, err := g.Regularity()
		return err == nil && reg == deg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
