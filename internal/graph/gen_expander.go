package graph

import "fmt"

// Paley returns the Paley graph on q vertices, where q must be a prime
// with q ≡ 1 (mod 4): vertices are Z_q and u ~ v iff u-v is a non-zero
// quadratic residue mod q. Paley graphs are (q-1)/2-regular, self-
// complementary, deterministic expanders: the adjacency eigenvalues are
// (q-1)/2 and (-1±√q)/2, so the transition-matrix λ_max ≈ 1/√q. They give
// the experiments a reproducible high-degree expander with no sampling
// noise.
func Paley(q int) (*Graph, error) {
	if q < 5 {
		return nil, fmt.Errorf("graph: Paley graph needs q >= 5, got %d", q)
	}
	if !isPrime(q) || q%4 != 1 {
		return nil, fmt.Errorf("graph: Paley graph needs a prime q ≡ 1 (mod 4), got %d", q)
	}
	// Quadratic residues via squaring; x² hits each non-zero residue twice.
	isQR := make([]bool, q)
	for x := 1; x < q; x++ {
		isQR[x*x%q] = true
	}
	b := NewBuilder(q, q*(q-1)/4)
	for u := 0; u < q; u++ {
		for v := u + 1; v < q; v++ {
			if isQR[(v-u)%q] {
				b.AddEdge(int32(u), int32(v))
			}
		}
	}
	return b.Build(fmt.Sprintf("paley(q=%d)", q))
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// Margulis returns the Margulis–Gabber–Galil expander on m² vertices:
// vertex (x, y) ∈ Z_m² is joined to (x±2y, y), (x±(2y+1), y), (x, y±2x)
// and (x, y±(2x+1)), all mod m. The construction is a constant-gap
// expander for every m. Symmetrising and removing loops/duplicates leaves
// a graph that is only near-8-regular (degree 4–8), which is fine for
// deterministic expander tests but outside the regular-graph scope of the
// paper's theorems; use RandomRegular for theorem-scope runs.
func Margulis(m int) (*Graph, error) {
	if m < 2 {
		return nil, fmt.Errorf("graph: Margulis needs m >= 2, got %d", m)
	}
	if m > 46340 {
		return nil, fmt.Errorf("graph: Margulis m=%d overflows int32 vertex ids", m)
	}
	n := m * m
	id := func(x, y int) int32 { return int32(((x%m+m)%m)*m + (y%m+m)%m) }
	b := NewBuilder(n, 4*n)
	for x := 0; x < m; x++ {
		for y := 0; y < m; y++ {
			v := id(x, y)
			for _, u := range [...]int32{
				id(x+2*y, y), id(x-2*y, y),
				id(x+2*y+1, y), id(x-2*y-1, y),
				id(x, y+2*x), id(x, y-2*x),
				id(x, y+2*x+1), id(x, y-2*x-1),
			} {
				if u != v {
					b.AddEdge(v, u)
				}
			}
		}
	}
	return b.Build(fmt.Sprintf("margulis(m=%d)", m))
}

// RingOfCliques returns k cliques of size c arranged in a ring, adjacent
// cliques joined by a single bridge edge. It is a classic bottlenecked
// family: the spectral gap shrinks like 1/k, giving the λ sweep its
// poorly-expanding end. The graph is irregular (bridge endpoints have
// degree c), connected for k >= 1, c >= 2.
func RingOfCliques(k, c int) (*Graph, error) {
	if k < 3 {
		return nil, fmt.Errorf("graph: ring of cliques needs k >= 3, got %d", k)
	}
	if c < 2 {
		return nil, fmt.Errorf("graph: ring of cliques needs clique size >= 2, got %d", c)
	}
	n := k * c
	b := NewBuilder(n, k*c*(c-1)/2+k)
	for i := 0; i < k; i++ {
		base := i * c
		for u := 0; u < c; u++ {
			for v := u + 1; v < c; v++ {
				b.AddEdge(int32(base+u), int32(base+v))
			}
		}
		// Bridge: last vertex of clique i to first vertex of clique i+1.
		next := ((i + 1) % k) * c
		b.AddEdge(int32(base+c-1), int32(next))
	}
	return b.Build(fmt.Sprintf("ring-of-cliques(k=%d,c=%d)", k, c))
}

// Barbell returns two cliques of size c joined by a path of pathLen
// intermediate vertices (pathLen = 0 joins the cliques by a single edge).
// The barbell is the textbook worst case for random-walk-style processes:
// its conductance, and hence spectral gap, is Θ(1/(c²·(pathLen+1))).
func Barbell(c, pathLen int) (*Graph, error) {
	if c < 2 {
		return nil, fmt.Errorf("graph: barbell needs clique size >= 2, got %d", c)
	}
	if pathLen < 0 {
		return nil, fmt.Errorf("graph: negative path length %d", pathLen)
	}
	n := 2*c + pathLen
	b := NewBuilder(n, c*(c-1)+pathLen+1)
	for u := 0; u < c; u++ {
		for v := u + 1; v < c; v++ {
			b.AddEdge(int32(u), int32(v))     // left clique: 0..c-1
			b.AddEdge(int32(c+u), int32(c+v)) // right clique: c..2c-1
		}
	}
	// Path from left clique vertex c-1 through 2c..2c+pathLen-1 to right
	// clique vertex c.
	prev := int32(c - 1)
	for i := 0; i < pathLen; i++ {
		next := int32(2*c + i)
		b.AddEdge(prev, next)
		prev = next
	}
	b.AddEdge(prev, int32(c))
	return b.Build(fmt.Sprintf("barbell(c=%d,path=%d)", c, pathLen))
}
