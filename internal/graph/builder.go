package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Builder accumulates undirected edges and produces a validated Graph.
// Duplicate edge insertions are tolerated and collapsed at Build time;
// self-loops are rejected immediately.
//
// The zero value is ready to use, but NewBuilder pre-sizes internal storage
// and fixes the vertex count up front, which generators prefer.
type Builder struct {
	n     int
	edges []edge
	err   error
}

type edge struct{ u, v int32 }

// NewBuilder returns a Builder for a graph on n vertices, with capacity for
// edgeHint undirected edges.
func NewBuilder(n, edgeHint int) *Builder {
	b := &Builder{n: n}
	if edgeHint > 0 {
		b.edges = make([]edge, 0, edgeHint)
	}
	if n < 0 {
		b.err = fmt.Errorf("graph: negative vertex count %d", n)
	}
	return b
}

// AddEdge records the undirected edge {u, v}. Errors (out-of-range ids,
// self-loops) are latched and reported by Build, so generator loops do not
// need per-call error handling.
func (b *Builder) AddEdge(u, v int32) {
	if b.err != nil {
		return
	}
	if u == v {
		b.err = fmt.Errorf("graph: self-loop at vertex %d", u)
		return
	}
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		b.err = fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
		return
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, edge{u, v})
}

// Build assembles the CSR graph, deduplicating edges. name labels the graph
// for diagnostics and experiment tables.
func (b *Builder) Build(name string) (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].u != b.edges[j].u {
			return b.edges[i].u < b.edges[j].u
		}
		return b.edges[i].v < b.edges[j].v
	})
	// Deduplicate in place.
	dedup := b.edges[:0]
	for i, e := range b.edges {
		if i > 0 && e == b.edges[i-1] {
			continue
		}
		dedup = append(dedup, e)
	}
	b.edges = dedup

	degrees := make([]int64, b.n+1)
	for _, e := range b.edges {
		degrees[e.u+1]++
		degrees[e.v+1]++
	}
	offsets := make([]int64, b.n+1)
	for i := 1; i <= b.n; i++ {
		offsets[i] = offsets[i-1] + degrees[i]
	}
	neighbors := make([]int32, offsets[b.n])
	cursor := make([]int64, b.n)
	copy(cursor, offsets[:b.n])
	for _, e := range b.edges {
		neighbors[cursor[e.u]] = e.v
		cursor[e.u]++
		neighbors[cursor[e.v]] = e.u
		cursor[e.v]++
	}
	g := &Graph{name: name, offsets: offsets, neighbors: neighbors}
	// Edges were inserted in global (u,v) order, so each adjacency list is
	// sorted for the u-side but interleaved for the v-side; sort per vertex
	// to restore the strict ordering invariant.
	for v := int32(0); v < int32(b.n); v++ {
		adj := g.neighbors[offsets[v]:offsets[v+1]]
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
	}
	return g, nil
}

// FromAdjacency builds a graph from an adjacency list description. The
// adjacency may list each edge in one or both directions; symmetry is
// restored automatically. It is primarily a convenience for tests.
func FromAdjacency(name string, adj [][]int32) (*Graph, error) {
	b := NewBuilder(len(adj), 0)
	for u, row := range adj {
		for _, v := range row {
			b.AddEdge(int32(u), v)
		}
	}
	return b.Build(name)
}

// FromEdges builds a graph on n vertices from an explicit edge list given
// as (u, v) pairs. It is a convenience wrapper over Builder.
func FromEdges(name string, n int, pairs [][2]int32) (*Graph, error) {
	b := NewBuilder(n, len(pairs))
	for _, p := range pairs {
		b.AddEdge(p[0], p[1])
	}
	return b.Build(name)
}

// errEmptyGraph guards generators against zero-vertex requests.
var errEmptyGraph = errors.New("graph: vertex count must be positive")
