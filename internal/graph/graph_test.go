package graph

import (
	"errors"
	"strings"
	"testing"
)

// must returns a checker that accepts any (graph, error) constructor result
// and fails the test on construction error or invariant violation. The
// curried form lets call sites expand multi-value returns directly:
// g := must(t)(Complete(6)).
func must(t *testing.T) func(*Graph, error) *Graph {
	return func(g *Graph, err error) *Graph {
		t.Helper()
		if err != nil {
			t.Fatalf("graph construction failed: %v", err)
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("constructed graph invalid: %v", verr)
		}
		return g
	}
}

func TestEmptyGraph(t *testing.T) {
	var g Graph
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("zero graph: N=%d M=%d, want 0,0", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("zero graph invalid: %v", err)
	}
	if !g.IsConnected() {
		t.Fatal("empty graph should be vacuously connected")
	}
	if r, err := g.Regularity(); err != nil || r != 0 {
		t.Fatalf("empty graph regularity = (%d, %v)", r, err)
	}
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4, 4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	b.AddEdge(0, 1) // duplicate must collapse
	b.AddEdge(1, 0) // reversed duplicate must collapse
	g := must(t)(b.Build("square"))
	if g.N() != 4 || g.M() != 4 {
		t.Fatalf("square: N=%d M=%d, want 4,4", g.N(), g.M())
	}
	if !g.IsRegular() {
		t.Fatal("square should be 2-regular")
	}
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
		if !g.HasEdge(e[0], e[1]) || !g.HasEdge(e[1], e[0]) {
			t.Fatalf("missing edge %v", e)
		}
	}
	if g.HasEdge(0, 2) || g.HasEdge(1, 3) {
		t.Fatal("diagonal edges should not exist")
	}
	if g.HasEdge(2, 2) {
		t.Fatal("self-edge reported present")
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("self-loop", func(t *testing.T) {
		b := NewBuilder(3, 1)
		b.AddEdge(1, 1)
		if _, err := b.Build("x"); err == nil {
			t.Fatal("want error for self-loop")
		}
	})
	t.Run("out-of-range", func(t *testing.T) {
		b := NewBuilder(3, 1)
		b.AddEdge(0, 5)
		if _, err := b.Build("x"); err == nil {
			t.Fatal("want error for out-of-range vertex")
		}
	})
	t.Run("negative-vertex", func(t *testing.T) {
		b := NewBuilder(3, 1)
		b.AddEdge(-1, 0)
		if _, err := b.Build("x"); err == nil {
			t.Fatal("want error for negative vertex")
		}
	})
	t.Run("negative-n", func(t *testing.T) {
		b := NewBuilder(-1, 0)
		if _, err := b.Build("x"); err == nil {
			t.Fatal("want error for negative n")
		}
	})
	t.Run("error-latches", func(t *testing.T) {
		b := NewBuilder(3, 2)
		b.AddEdge(1, 1) // bad
		b.AddEdge(0, 1) // good, but error already latched
		if _, err := b.Build("x"); err == nil {
			t.Fatal("latched error lost")
		}
	})
}

func TestNeighborsSortedAndShared(t *testing.T) {
	g := must(t)(Complete(6))
	for v := int32(0); v < 6; v++ {
		adj := g.Neighbors(v)
		if len(adj) != 5 {
			t.Fatalf("K6 degree(%d) = %d", v, len(adj))
		}
		for i := 1; i < len(adj); i++ {
			if adj[i-1] >= adj[i] {
				t.Fatalf("adjacency of %d not sorted: %v", v, adj)
			}
		}
		for i := range adj {
			if g.Neighbor(v, i) != adj[i] {
				t.Fatalf("Neighbor(%d,%d) mismatch", v, i)
			}
		}
	}
}

func TestRegularity(t *testing.T) {
	g := must(t)(Star(5))
	if g.IsRegular() {
		t.Fatal("star reported regular")
	}
	if _, err := g.Regularity(); !errors.Is(err, ErrNotRegular) {
		t.Fatalf("Regularity error = %v, want ErrNotRegular", err)
	}
	if g.MinDegree() != 1 || g.MaxDegree() != 4 {
		t.Fatalf("star degrees: min=%d max=%d, want 1,4", g.MinDegree(), g.MaxDegree())
	}
}

func TestEdgesIterator(t *testing.T) {
	g := must(t)(Cycle(5))
	count := 0
	g.Edges(func(u, v int32) bool {
		if u >= v {
			t.Fatalf("Edges emitted non-canonical pair (%d,%d)", u, v)
		}
		count++
		return true
	})
	if count != 5 {
		t.Fatalf("C5 edge count = %d, want 5", count)
	}
	// Early stop.
	count = 0
	g.Edges(func(u, v int32) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop visited %d edges, want 2", count)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	g := must(t)(Cycle(4))
	// Corrupt a neighbour id out of range.
	g2 := *g
	g2.neighbors = append([]int32(nil), g.neighbors...)
	g2.neighbors[0] = 99
	if err := g2.Validate(); err == nil {
		t.Fatal("Validate missed out-of-range neighbour")
	}
	// Introduce asymmetry: replace one arc with another valid vertex.
	g3 := *g
	g3.neighbors = append([]int32(nil), g.neighbors...)
	// vertex 0's neighbours in C4 are {1,3}; change 3 -> 2 creates arc 0->2
	// without 2->0.
	for i := g3.offsets[0]; i < g3.offsets[1]; i++ {
		if g3.neighbors[i] == 3 {
			g3.neighbors[i] = 2
		}
	}
	if err := g3.Validate(); err == nil {
		t.Fatal("Validate missed asymmetric edge")
	}
}

func TestStringSummary(t *testing.T) {
	g := must(t)(Cycle(7))
	s := g.String()
	for _, want := range []string{"cycle(n=7)", "n=7", "m=7", "2-regular"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	h := must(t)(Star(4))
	if !strings.Contains(h.String(), "irregular") {
		t.Fatalf("String() = %q should mention irregular", h.String())
	}
}

func TestFromAdjacency(t *testing.T) {
	g, err := FromAdjacency("triangle", [][]int32{{1, 2}, {0, 2}, {0, 1}})
	g = must(t)(g, err)
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("triangle: N=%d M=%d", g.N(), g.M())
	}
	// One-directional listing should symmetrise.
	h, err := FromAdjacency("tri2", [][]int32{{1, 2}, {2}, {}})
	h = must(t)(h, err)
	if h.M() != 3 {
		t.Fatalf("one-directional adjacency: M=%d, want 3", h.M())
	}
}

func TestTriangleCounts(t *testing.T) {
	cases := []struct {
		name string
		g    func() (*Graph, error)
		want int64
	}{
		{"K4", func() (*Graph, error) { return Complete(4) }, 4},
		{"K5", func() (*Graph, error) { return Complete(5) }, 10},
		{"C5", func() (*Graph, error) { return Cycle(5) }, 0},
		{"petersen", Petersen, 0},                                 // girth 5
		{"prism", PrismGraph, 2},                                  // two triangle faces
		{"Q3", func() (*Graph, error) { return Hypercube(3) }, 0}, // bipartite
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := must(t)(tc.g())
			if got := g.Triangles(); got != tc.want {
				t.Fatalf("Triangles() = %d, want %d", got, tc.want)
			}
		})
	}
}
