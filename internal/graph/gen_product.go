package graph

import "fmt"

// Hypercube returns the d-dimensional hypercube Q_d on n = 2^d vertices:
// u ~ v iff they differ in exactly one bit. Q_d is d-regular and bipartite
// (λ_n = -1), with transition-matrix eigenvalues (d-2i)/d. It appears in
// experiment E10 as a structured graph outside the theorems' λ < 1 scope.
func Hypercube(d int) (*Graph, error) {
	if d < 1 || d > 27 {
		return nil, fmt.Errorf("graph: hypercube dimension %d out of range [1,27]", d)
	}
	n := 1 << d
	b := NewBuilder(n, n*d/2)
	for v := 0; v < n; v++ {
		for bit := 0; bit < d; bit++ {
			u := v ^ (1 << bit)
			if v < u {
				b.AddEdge(int32(v), int32(u))
			}
		}
	}
	return b.Build(fmt.Sprintf("hypercube(d=%d)", d))
}

// Torus returns the Cartesian product of cycles with the given side
// lengths: the d-dimensional discrete torus. Every side must be >= 3, which
// makes the torus 2d-regular. The 2-D torus is the wrap-around version of
// the grid on which Dutta et al. proved the Õ(n^{1/d}) COBRA cover time
// (experiment E8); wrapping preserves that scaling while keeping the graph
// regular as Theorem 1 requires.
func Torus(sides ...int) (*Graph, error) {
	if len(sides) == 0 {
		return nil, errEmptyGraph
	}
	n := 1
	for _, s := range sides {
		if s < 3 {
			return nil, fmt.Errorf("graph: torus side %d < 3 would create parallel edges", s)
		}
		if n > (1<<31-1)/s {
			return nil, fmt.Errorf("graph: torus with sides %v exceeds int32 vertex ids", sides)
		}
		n *= s
	}
	// Mixed-radix encoding: coordinate i has stride prod(sides[:i]).
	strides := make([]int, len(sides))
	strides[0] = 1
	for i := 1; i < len(sides); i++ {
		strides[i] = strides[i-1] * sides[i-1]
	}
	b := NewBuilder(n, n*len(sides))
	coord := make([]int, len(sides))
	for v := 0; v < n; v++ {
		for i, s := range sides {
			up := v + strides[i]*(((coord[i]+1)%s)-coord[i])
			b.AddEdge(int32(v), int32(up))
		}
		// Increment mixed-radix counter.
		for i := 0; i < len(sides); i++ {
			coord[i]++
			if coord[i] < sides[i] {
				break
			}
			coord[i] = 0
		}
	}
	return b.Build(fmt.Sprintf("torus(sides=%v)", sides))
}

// Grid returns the d-dimensional grid (no wrap-around) with the given side
// lengths. Boundary vertices have lower degree, so grids are irregular;
// they exist to mirror Dutta et al.'s grid experiments exactly.
func Grid(sides ...int) (*Graph, error) {
	if len(sides) == 0 {
		return nil, errEmptyGraph
	}
	n := 1
	for _, s := range sides {
		if s < 1 {
			return nil, fmt.Errorf("graph: grid side %d < 1", s)
		}
		if n > (1<<31-1)/s {
			return nil, fmt.Errorf("graph: grid with sides %v exceeds int32 vertex ids", sides)
		}
		n *= s
	}
	if n == 1 {
		return FromEdges(fmt.Sprintf("grid(sides=%v)", sides), 1, nil)
	}
	strides := make([]int, len(sides))
	strides[0] = 1
	for i := 1; i < len(sides); i++ {
		strides[i] = strides[i-1] * sides[i-1]
	}
	edgeHint := 0
	for i := range sides {
		edgeHint += n - n/sides[i]
	}
	b := NewBuilder(n, edgeHint)
	coord := make([]int, len(sides))
	for v := 0; v < n; v++ {
		for i, s := range sides {
			if coord[i]+1 < s {
				b.AddEdge(int32(v), int32(v+strides[i]))
			}
		}
		for i := 0; i < len(sides); i++ {
			coord[i]++
			if coord[i] < sides[i] {
				break
			}
			coord[i] = 0
		}
	}
	return b.Build(fmt.Sprintf("grid(sides=%v)", sides))
}
