package graph

import (
	"testing"

	"cobrawalk/internal/rng"
)

func TestBFSDistances(t *testing.T) {
	g := must(t)(Cycle(6))
	d := g.BFS(0)
	want := []int32{0, 1, 2, 3, 2, 1}
	for i, w := range want {
		if d[i] != w {
			t.Fatalf("BFS(C6)[%d] = %d, want %d", i, d[i], w)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	// Two disjoint triangles.
	g, err := FromEdges("2tri", 6, [][2]int32{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}})
	g = must(t)(g, err)
	d := g.BFS(0)
	for v := 3; v < 6; v++ {
		if d[v] != -1 {
			t.Fatalf("unreachable vertex %d has distance %d", v, d[v])
		}
	}
	if g.IsConnected() {
		t.Fatal("disjoint triangles reported connected")
	}
	comp, count := g.ConnectedComponents()
	if count != 2 {
		t.Fatalf("component count = %d, want 2", count)
	}
	if comp[0] != comp[1] || comp[0] != comp[2] || comp[3] != comp[4] || comp[0] == comp[3] {
		t.Fatalf("bad component labels: %v", comp)
	}
	if g.Diameter() != -1 {
		t.Fatalf("disconnected diameter = %d, want -1", g.Diameter())
	}
	if g.Eccentricity(0) != -1 {
		t.Fatal("eccentricity of disconnected graph should be -1")
	}
}

func TestConnectedComponentsSingletons(t *testing.T) {
	g, err := FromEdges("isolated", 4, [][2]int32{{0, 1}})
	g = must(t)(g, err)
	_, count := g.ConnectedComponents()
	if count != 3 {
		t.Fatalf("components = %d, want 3 (one edge, two isolated)", count)
	}
}

func TestIsBipartite(t *testing.T) {
	cases := []struct {
		name string
		make func() (*Graph, error)
		want bool
	}{
		{"C4", func() (*Graph, error) { return Cycle(4) }, true},
		{"C5", func() (*Graph, error) { return Cycle(5) }, false},
		{"K33", func() (*Graph, error) { return CompleteBipartite(3, 3) }, true},
		{"K4", func() (*Graph, error) { return Complete(4) }, false},
		{"Q4", func() (*Graph, error) { return Hypercube(4) }, true},
		{"petersen", Petersen, false},
		{"path", func() (*Graph, error) { return Path(9) }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := must(t)(tc.make())
			if got := g.IsBipartite(); got != tc.want {
				t.Fatalf("IsBipartite = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestBipartiteDisconnected(t *testing.T) {
	// Disjoint union of C4 (bipartite) and C3 (odd): overall not bipartite.
	g, err := FromEdges("c4+c3", 7, [][2]int32{
		{0, 1}, {1, 2}, {2, 3}, {3, 0},
		{4, 5}, {5, 6}, {6, 4},
	})
	g = must(t)(g, err)
	if g.IsBipartite() {
		t.Fatal("C4+C3 reported bipartite")
	}
}

func TestDiameterKnown(t *testing.T) {
	cases := []struct {
		name string
		make func() (*Graph, error)
		want int
	}{
		{"K7", func() (*Graph, error) { return Complete(7) }, 1},
		{"C10", func() (*Graph, error) { return Cycle(10) }, 5},
		{"Q5", func() (*Graph, error) { return Hypercube(5) }, 5},
		{"petersen", Petersen, 2},
		{"P4", func() (*Graph, error) { return Path(4) }, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := must(t)(tc.make())
			if got := g.Diameter(); got != tc.want {
				t.Fatalf("diameter = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := must(t)(Star(5))
	h := g.DegreeHistogram()
	if h[4] != 1 || h[1] != 4 {
		t.Fatalf("star degree histogram = %v", h)
	}
}

func TestRandomRegularDiameterSmall(t *testing.T) {
	// Expanders have O(log n) diameter; sanity check a random 4-regular
	// graph on 256 vertices has diameter well under, say, 20.
	r := rng.New(5)
	g, err := RandomRegularConnected(256, 4, r)
	g = must(t)(g, err)
	if d := g.Diameter(); d <= 0 || d > 20 {
		t.Fatalf("random 4-regular n=256 diameter = %d, expected small positive", d)
	}
}
