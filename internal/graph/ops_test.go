package graph

import (
	"testing"
	"testing/quick"

	"cobrawalk/internal/rng"
)

func TestComplement(t *testing.T) {
	// Complement of C5 is C5 (self-complementary).
	g := must(t)(Cycle(5))
	c := must(t)(Complement(g))
	checkInvariants(t, c, 5, 5, 2)
	if !c.IsConnected() {
		t.Fatal("complement of C5 should be a 5-cycle")
	}
	// Complement of K_n is empty.
	k := must(t)(Complete(6))
	ck := must(t)(Complement(k))
	if ck.M() != 0 {
		t.Fatalf("complement of K6 has %d edges", ck.M())
	}
	// Complement twice is the identity (as an edge set).
	p := must(t)(Petersen())
	cc := must(t)(Complement(must(t)(Complement(p))))
	assertSameGraph(t, p, cc)
}

func TestComplementPaleySelfComplementary(t *testing.T) {
	// Paley graphs are self-complementary: the complement has identical
	// size, regularity, and spectrum (isomorphism would need explicit
	// mapping; spectrum equality is a strong certificate).
	g := must(t)(Paley(13))
	c := must(t)(Complement(g))
	checkInvariants(t, c, 13, g.M(), 6)
}

func TestInducedSubgraph(t *testing.T) {
	g := must(t)(Complete(6))
	sub := must(t)(InducedSubgraph(g, []int32{0, 2, 4}))
	checkInvariants(t, sub, 3, 3, 2) // induced K3
	// Induced subgraph of a cycle on non-adjacent vertices has no edges.
	c := must(t)(Cycle(6))
	sub2 := must(t)(InducedSubgraph(c, []int32{0, 2, 4}))
	if sub2.M() != 0 {
		t.Fatalf("independent-set induced subgraph has %d edges", sub2.M())
	}
	if _, err := InducedSubgraph(g, []int32{0, 0}); err == nil {
		t.Fatal("duplicate vertices should fail")
	}
	if _, err := InducedSubgraph(g, []int32{99}); err == nil {
		t.Fatal("out-of-range vertex should fail")
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	g := must(t)(Petersen())
	perm := make([]int32, 10)
	for i := range perm {
		perm[i] = int32((i + 3) % 10)
	}
	h := must(t)(Relabel(g, perm))
	checkInvariants(t, h, 10, 15, 3)
	// Edge (u,v) in g iff (perm[u], perm[v]) in h.
	ok := true
	g.Edges(func(u, v int32) bool {
		if !h.HasEdge(perm[u], perm[v]) {
			ok = false
			return false
		}
		return true
	})
	if !ok {
		t.Fatal("relabel lost an edge")
	}
	if h.Diameter() != g.Diameter() || h.Triangles() != g.Triangles() {
		t.Fatal("relabel changed invariants")
	}
}

func TestRelabelValidation(t *testing.T) {
	g := must(t)(Cycle(4))
	if _, err := Relabel(g, []int32{0, 1}); err == nil {
		t.Fatal("short permutation should fail")
	}
	if _, err := Relabel(g, []int32{0, 1, 2, 2}); err == nil {
		t.Fatal("non-permutation should fail")
	}
	if _, err := Relabel(g, []int32{0, 1, 2, 9}); err == nil {
		t.Fatal("out-of-range entry should fail")
	}
}

func TestRelabelRandomQuick(t *testing.T) {
	r := rng.New(6)
	f := func(seed uint32) bool {
		rr := rng.New(uint64(seed))
		g, err := ErdosRenyi(20, 0.2, rr)
		if err != nil {
			return false
		}
		permInts := r.Perm(20)
		perm := make([]int32, 20)
		for i, p := range permInts {
			perm[i] = int32(p)
		}
		h, err := Relabel(g, perm)
		if err != nil || h.Validate() != nil {
			return false
		}
		return h.M() == g.M() && h.Triangles() == g.Triangles()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleCover(t *testing.T) {
	// Double cover of a non-bipartite connected graph is connected and
	// bipartite, with doubled size.
	g := must(t)(Petersen())
	dc := must(t)(DoubleCover(g))
	checkInvariants(t, dc, 20, 30, 3)
	if !dc.IsBipartite() {
		t.Fatal("double cover should be bipartite")
	}
	if !dc.IsConnected() {
		t.Fatal("double cover of a non-bipartite connected graph should be connected")
	}
	// Double cover of a bipartite graph is disconnected (two copies).
	c4 := must(t)(Cycle(4))
	dc4 := must(t)(DoubleCover(c4))
	if dc4.IsConnected() {
		t.Fatal("double cover of a bipartite graph should be disconnected")
	}
	if !dc4.IsBipartite() {
		t.Fatal("double cover should be bipartite")
	}
}

func TestDoubleCoverOfOddCycleIsBigCycle(t *testing.T) {
	// The double cover of C_{2k+1} is C_{4k+2}.
	g := must(t)(Cycle(5))
	dc := must(t)(DoubleCover(g))
	checkInvariants(t, dc, 10, 10, 2)
	if !dc.IsConnected() {
		t.Fatal("double cover of C5 should be C10 (connected)")
	}
	if dc.Diameter() != 5 {
		t.Fatalf("C10 diameter = %d, want 5", dc.Diameter())
	}
}
