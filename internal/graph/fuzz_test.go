package graph

import (
	"bytes"
	"slices"
	"strings"
	"testing"
)

// FuzzRead asserts the text-format parser never panics and that any graph
// it accepts satisfies the structural invariants and round-trips.
func FuzzRead(f *testing.F) {
	seeds := []string{
		"graph t\nn 3\n0 1\n1 2\n",
		"n 0\n",
		"# comment\nn 5\n0 4\n",
		"graph x\nn 2\n1 0\n",
		"n 3\n0 1 2\n",
		"n -1\n",
		"n 3\n1 1\n",
		"garbage\n",
		"n 9999999999999999999\n",
		"graph \nn 1\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		g, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted graph violates invariants: %v\ninput: %q", verr, input)
		}
		// Accepted graphs must round-trip (up to name normalisation).
		var buf bytes.Buffer
		if g.N() == 0 {
			return
		}
		if werr := Write(&buf, g); werr != nil {
			// Names with control characters can be rejected at write time;
			// that is the documented contract, not a round-trip failure.
			return
		}
		h, rerr := Read(&buf)
		if rerr != nil {
			t.Fatalf("round-trip re-read failed: %v\ninput: %q", rerr, input)
		}
		if h.N() != g.N() || h.M() != g.M() {
			t.Fatalf("round-trip changed size: (%d,%d) -> (%d,%d)", g.N(), g.M(), h.N(), h.M())
		}
	})
}

// FuzzFromCSR asserts FromCSR either rejects a malformed packed adjacency
// (non-monotone or mis-sized degree sequences, out-of-range / unsorted /
// duplicated neighbours, self-loops, asymmetry) or accepts a graph that
// round-trips: rebuilding the accepted graph edge-by-edge through the
// Builder must reproduce the exact same packed arrays. The fuzz input
// encodes per-vertex degree deltas and neighbour ids as signed bytes so
// negative and oversized values probe every validation clause.
func FuzzFromCSR(f *testing.F) {
	f.Add([]byte{2, 2, 2}, []byte{1, 2, 0, 2, 0, 1}) // triangle: accepted
	f.Add([]byte{1, 1}, []byte{1, 0})                // single edge: accepted
	f.Add([]byte{0}, []byte{})                       // isolated vertex
	f.Add([]byte{2, 1}, []byte{1, 1, 0})             // duplicate adjacency
	f.Add([]byte{1, 1}, []byte{0, 1})                // self-loop
	f.Add([]byte{1, 1}, []byte{1, 5})                // neighbour out of range
	f.Add([]byte{1, 1}, []byte{1, 255})              // negative neighbour
	f.Add([]byte{255, 1}, []byte{1, 0})              // negative degree delta
	f.Add([]byte{3, 1}, []byte{1, 0})                // offsets overrun neighbours
	f.Add([]byte{1, 1}, []byte{1, 0, 0})             // trailing neighbours
	f.Fuzz(func(t *testing.T, degs, nbr []byte) {
		if len(degs) > 128 {
			degs = degs[:128]
		}
		offsets := make([]int64, len(degs)+1)
		for i, d := range degs {
			offsets[i+1] = offsets[i] + int64(int8(d))
		}
		neighbors := make([]int32, len(nbr))
		for i, v := range nbr {
			neighbors[i] = int32(int8(v))
		}
		g, err := FromCSR("fuzz", offsets, neighbors)
		if err != nil {
			return // rejected input is fine; panics and corrupt accepts are not
		}
		b := NewBuilder(g.N(), g.M())
		for v := int32(0); int(v) < g.N(); v++ {
			for _, u := range g.Neighbors(v) {
				if u > v {
					b.AddEdge(v, u)
				}
			}
		}
		h, berr := b.Build("fuzz")
		if berr != nil {
			t.Fatalf("accepted CSR graph rejected by Builder: %v", berr)
		}
		ho, hn := h.CSR()
		gOff, gNbr := g.CSR()
		if !slices.Equal(ho, gOff) || !slices.Equal(hn, gNbr) {
			t.Fatalf("CSR round-trip mismatch:\n offsets %v -> %v\n neighbors %v -> %v",
				gOff, ho, gNbr, hn)
		}
	})
}

// FuzzBuilder asserts arbitrary edge insertions either error or produce a
// valid graph — never a panic or a corrupt structure.
func FuzzBuilder(f *testing.F) {
	f.Add(5, []byte{0, 1, 1, 2, 2, 3})
	f.Add(2, []byte{0, 0})
	f.Add(0, []byte{})
	f.Add(3, []byte{255, 1})
	f.Fuzz(func(t *testing.T, n int, pairs []byte) {
		if n < 0 || n > 300 {
			return
		}
		b := NewBuilder(n, len(pairs)/2)
		for i := 0; i+1 < len(pairs); i += 2 {
			b.AddEdge(int32(int8(pairs[i])), int32(int8(pairs[i+1])))
		}
		g, err := b.Build("fuzz")
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("built graph violates invariants: %v", verr)
		}
	})
}
