package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead asserts the text-format parser never panics and that any graph
// it accepts satisfies the structural invariants and round-trips.
func FuzzRead(f *testing.F) {
	seeds := []string{
		"graph t\nn 3\n0 1\n1 2\n",
		"n 0\n",
		"# comment\nn 5\n0 4\n",
		"graph x\nn 2\n1 0\n",
		"n 3\n0 1 2\n",
		"n -1\n",
		"n 3\n1 1\n",
		"garbage\n",
		"n 9999999999999999999\n",
		"graph \nn 1\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		g, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted graph violates invariants: %v\ninput: %q", verr, input)
		}
		// Accepted graphs must round-trip (up to name normalisation).
		var buf bytes.Buffer
		if g.N() == 0 {
			return
		}
		if werr := Write(&buf, g); werr != nil {
			// Names with control characters can be rejected at write time;
			// that is the documented contract, not a round-trip failure.
			return
		}
		h, rerr := Read(&buf)
		if rerr != nil {
			t.Fatalf("round-trip re-read failed: %v\ninput: %q", rerr, input)
		}
		if h.N() != g.N() || h.M() != g.M() {
			t.Fatalf("round-trip changed size: (%d,%d) -> (%d,%d)", g.N(), g.M(), h.N(), h.M())
		}
	})
}

// FuzzBuilder asserts arbitrary edge insertions either error or produce a
// valid graph — never a panic or a corrupt structure.
func FuzzBuilder(f *testing.F) {
	f.Add(5, []byte{0, 1, 1, 2, 2, 3})
	f.Add(2, []byte{0, 0})
	f.Add(0, []byte{})
	f.Add(3, []byte{255, 1})
	f.Fuzz(func(t *testing.T, n int, pairs []byte) {
		if n < 0 || n > 300 {
			return
		}
		b := NewBuilder(n, len(pairs)/2)
		for i := 0; i+1 < len(pairs); i += 2 {
			b.AddEdge(int32(int8(pairs[i])), int32(int8(pairs[i+1])))
		}
		g, err := b.Build("fuzz")
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("built graph violates invariants: %v", verr)
		}
	})
}
