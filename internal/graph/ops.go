package graph

import "fmt"

// Complement returns the complement graph: u ~ v in the result iff u != v
// and u !~ v in g. The complement of an r-regular graph is (n-1-r)-regular;
// Paley graphs are isomorphic to their complements.
func Complement(g *Graph) (*Graph, error) {
	n := g.N()
	m := n*(n-1)/2 - g.M()
	b := NewBuilder(n, m)
	for u := int32(0); u < int32(n); u++ {
		adj := g.Neighbors(u)
		i := 0
		for v := u + 1; v < int32(n); v++ {
			for i < len(adj) && adj[i] < v {
				i++
			}
			if i < len(adj) && adj[i] == v {
				continue
			}
			b.AddEdge(u, v)
		}
	}
	return b.Build(fmt.Sprintf("complement(%s)", g.Name()))
}

// InducedSubgraph returns the subgraph induced by the given vertex set
// (which must be duplicate-free), with vertices relabelled 0..len(set)-1
// in the order given.
func InducedSubgraph(g *Graph, set []int32) (*Graph, error) {
	idx := make(map[int32]int32, len(set))
	for i, v := range set {
		if v < 0 || int(v) >= g.N() {
			return nil, fmt.Errorf("graph: vertex %d out of range [0,%d)", v, g.N())
		}
		if _, dup := idx[v]; dup {
			return nil, fmt.Errorf("graph: duplicate vertex %d in induced set", v)
		}
		idx[v] = int32(i)
	}
	b := NewBuilder(len(set), 0)
	for _, v := range set {
		for _, u := range g.Neighbors(v) {
			if j, ok := idx[u]; ok && idx[v] < j {
				b.AddEdge(idx[v], j)
			}
		}
	}
	return b.Build(fmt.Sprintf("induced(%s,k=%d)", g.Name(), len(set)))
}

// Relabel returns an isomorphic copy of g with vertex v renamed perm[v].
// perm must be a permutation of 0..n-1. Process statistics are invariant
// under relabelling, which makes this the natural isomorphism fixture for
// property tests.
func Relabel(g *Graph, perm []int32) (*Graph, error) {
	n := g.N()
	if len(perm) != n {
		return nil, fmt.Errorf("graph: permutation length %d != n %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || int(p) >= n || seen[p] {
			return nil, fmt.Errorf("graph: invalid permutation entry %d", p)
		}
		seen[p] = true
	}
	b := NewBuilder(n, g.M())
	g.Edges(func(u, v int32) bool {
		b.AddEdge(perm[u], perm[v])
		return true
	})
	return b.Build(fmt.Sprintf("relabel(%s)", g.Name()))
}

// DoubleCover returns the bipartite double cover of g: two copies of the
// vertex set, with (u, 0) ~ (v, 1) iff u ~ v in g. The cover is always
// bipartite; it is connected iff g is connected and non-bipartite. Its
// transition spectrum is the union of g's spectrum and its negation, which
// is why the construction is the classic device for reasoning about the
// λ_n = -1 boundary that excludes bipartite graphs from Theorems 1-3.
func DoubleCover(g *Graph) (*Graph, error) {
	n := g.N()
	if n > (1<<31-1)/2 {
		return nil, fmt.Errorf("graph: double cover of n=%d overflows int32 ids", n)
	}
	b := NewBuilder(2*n, 2*g.M())
	g.Edges(func(u, v int32) bool {
		b.AddEdge(u, v+int32(n))
		b.AddEdge(v, u+int32(n))
		return true
	})
	return b.Build(fmt.Sprintf("double-cover(%s)", g.Name()))
}
