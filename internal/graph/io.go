package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format is a simple self-describing edge list:
//
//	graph <name>
//	n <vertex count>
//	<u> <v>        (one undirected edge per line, either order)
//
// Blank lines and lines starting with '#' are ignored. The format is
// deliberately trivial so graphs can be produced and consumed by shell
// tools and other languages.

// Write serialises the graph in the text edge-list format.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	name := g.Name()
	if name == "" {
		name = "unnamed"
	}
	if strings.ContainsAny(name, "\n\r") {
		return fmt.Errorf("graph: name %q contains newline", name)
	}
	if _, err := fmt.Fprintf(bw, "graph %s\nn %d\n", name, g.N()); err != nil {
		return err
	}
	var writeErr error
	g.Edges(func(u, v int32) bool {
		if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
			writeErr = err
			return false
		}
		return true
	})
	if writeErr != nil {
		return writeErr
	}
	return bw.Flush()
}

// Read parses a graph in the text edge-list format produced by Write.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	name := ""
	n := -1
	var b *Builder
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "graph "):
			name = strings.TrimSpace(strings.TrimPrefix(line, "graph "))
		case strings.HasPrefix(line, "n "):
			v, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, "n ")))
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad vertex count: %w", lineNo, err)
			}
			if v < 0 {
				return nil, fmt.Errorf("graph: line %d: negative vertex count %d", lineNo, v)
			}
			n = v
			b = NewBuilder(n, 0)
		default:
			if b == nil {
				return nil, fmt.Errorf("graph: line %d: edge before 'n' header", lineNo)
			}
			fields := strings.Fields(line)
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: want 'u v', got %q", lineNo, line)
			}
			u, err := strconv.ParseInt(fields[0], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad vertex id: %w", lineNo, err)
			}
			v, err := strconv.ParseInt(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad vertex id: %w", lineNo, err)
			}
			b.AddEdge(int32(u), int32(v))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("graph: missing 'n' header")
	}
	g, err := b.Build(name)
	if err != nil {
		return nil, err
	}
	return g, nil
}
