package graph

import (
	"bytes"
	"strings"
	"testing"

	"cobrawalk/internal/rng"
)

func TestWriteReadRoundTrip(t *testing.T) {
	cases := []func() (*Graph, error){
		func() (*Graph, error) { return Complete(6) },
		func() (*Graph, error) { return Cycle(9) },
		Petersen,
		func() (*Graph, error) { return Hypercube(4) },
		func() (*Graph, error) { return FromEdges("empty5", 5, nil) },
	}
	for _, mk := range cases {
		g := must(t)(mk())
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("%s: write: %v", g.Name(), err)
		}
		h, err := Read(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", g.Name(), err)
		}
		assertSameGraph(t, g, h)
		if h.Name() != g.Name() && !(g.Name() == "" && h.Name() == "unnamed") {
			t.Fatalf("name round-trip: %q -> %q", g.Name(), h.Name())
		}
	}
}

func TestReadRoundTripRandom(t *testing.T) {
	r := rng.New(21)
	for i := 0; i < 10; i++ {
		g, err := ErdosRenyi(40, 0.15, r)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatal(err)
		}
		h, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		assertSameGraph(t, g, h)
	}
}

func assertSameGraph(t *testing.T, g, h *Graph) {
	t.Helper()
	if g.N() != h.N() || g.M() != h.M() {
		t.Fatalf("size mismatch: (%d,%d) vs (%d,%d)", g.N(), g.M(), h.N(), h.M())
	}
	for v := int32(0); v < int32(g.N()); v++ {
		a, b := g.Neighbors(v), h.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("degree mismatch at %d: %d vs %d", v, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("adjacency mismatch at %d: %v vs %v", v, a, b)
			}
		}
	}
}

func TestReadFormats(t *testing.T) {
	t.Run("comments-and-blank-lines", func(t *testing.T) {
		in := "# a triangle\ngraph tri\n\nn 3\n0 1\n# middle comment\n1 2\n2 0\n"
		g, err := Read(strings.NewReader(in))
		if err != nil {
			t.Fatal(err)
		}
		if g.N() != 3 || g.M() != 3 || g.Name() != "tri" {
			t.Fatalf("parsed %v", g)
		}
	})
	t.Run("either-edge-order", func(t *testing.T) {
		g, err := Read(strings.NewReader("n 3\n1 0\n2 1\n"))
		if err != nil {
			t.Fatal(err)
		}
		if g.M() != 2 {
			t.Fatalf("M = %d", g.M())
		}
	})
	errCases := []struct {
		name, in string
	}{
		{"no-header", "0 1\n"},
		{"bad-n", "n x\n"},
		{"negative-n", "n -3\n"},
		{"bad-edge-arity", "n 3\n0 1 2\n"},
		{"bad-vertex", "n 3\n0 a\n"},
		{"out-of-range", "n 3\n0 7\n"},
		{"self-loop", "n 3\n1 1\n"},
		{"missing-n", "graph g\n"},
	}
	for _, tc := range errCases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("Read(%q) should fail", tc.in)
			}
		})
	}
}

func TestWriteRejectsNewlineName(t *testing.T) {
	g, err := FromEdges("bad\nname", 2, [][2]int32{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, g); err == nil {
		t.Fatal("Write should reject names containing newlines")
	}
}
