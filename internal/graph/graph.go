// Package graph provides the graph substrate for the COBRA/BIPS simulation
// laboratory: a compact immutable adjacency representation, generators for
// the graph families used throughout the paper's analysis (complete graphs,
// cycles, hypercubes, tori, random regular graphs, deterministic expanders,
// tunable-gap families), traversal utilities, and a text serialization
// format.
//
// Graphs are simple (no self-loops, no parallel edges) and undirected.
// Vertices are identified by int32 indices in [0, N()). The representation
// is CSR (compressed sparse row): a single offsets slice plus a single
// neighbours slice, which keeps per-vertex adjacency contiguous in memory —
// the inner loops of the COBRA and BIPS processes are dominated by random
// neighbour lookups, so locality matters.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Graph is an immutable simple undirected graph in CSR form.
//
// The zero value is the empty graph with no vertices. Construct non-trivial
// graphs with a Builder or one of the generator functions.
type Graph struct {
	name      string
	offsets   []int64 // len N()+1; neighbours of v are neighbors[offsets[v]:offsets[v+1]]
	neighbors []int32 // len 2*M(); each undirected edge appears twice
}

// ErrNotRegular is returned by operations that require a regular graph.
var ErrNotRegular = errors.New("graph: not regular")

// N returns the number of vertices.
func (g *Graph) N() int {
	if g == nil || len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// M returns the number of undirected edges.
func (g *Graph) M() int {
	if g == nil || len(g.offsets) == 0 {
		return 0
	}
	return len(g.neighbors) / 2
}

// Name returns the human-readable family name given at construction
// (for example "random-regular(n=1024,r=8)").
func (g *Graph) Name() string { return g.name }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the adjacency list of v as a shared, sorted, read-only
// slice. Callers must not modify it.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.neighbors[g.offsets[v]:g.offsets[v+1]]
}

// Neighbor returns the i-th neighbour of v (0-based). It is the hot-path
// accessor used for uniform neighbour sampling: a uniform neighbour of v is
// g.Neighbor(v, rng.Intn(g.Degree(v))).
func (g *Graph) Neighbor(v int32, i int) int32 {
	return g.neighbors[g.offsets[v]+int64(i)]
}

// HasEdge reports whether {u, v} is an edge, by binary search over the
// sorted adjacency of the lower-degree endpoint.
func (g *Graph) HasEdge(u, v int32) bool {
	if u == v {
		return false
	}
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	adj := g.Neighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// Regularity returns the common degree r if the graph is regular, or
// ErrNotRegular. The empty graph is vacuously 0-regular.
func (g *Graph) Regularity() (int, error) {
	n := g.N()
	if n == 0 {
		return 0, nil
	}
	r := g.Degree(0)
	for v := int32(1); v < int32(n); v++ {
		if g.Degree(v) != r {
			return 0, fmt.Errorf("%w: deg(0)=%d but deg(%d)=%d", ErrNotRegular, r, v, g.Degree(v))
		}
	}
	return r, nil
}

// IsRegular reports whether every vertex has the same degree.
func (g *Graph) IsRegular() bool {
	_, err := g.Regularity()
	return err == nil
}

// MinDegree returns the minimum vertex degree (0 for the empty graph).
func (g *Graph) MinDegree() int {
	n := g.N()
	if n == 0 {
		return 0
	}
	minDeg := g.Degree(0)
	for v := int32(1); v < int32(n); v++ {
		if d := g.Degree(v); d < minDeg {
			minDeg = d
		}
	}
	return minDeg
}

// MaxDegree returns the maximum vertex degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	n := g.N()
	if n == 0 {
		return 0
	}
	maxDeg := g.Degree(0)
	for v := int32(1); v < int32(n); v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	return maxDeg
}

// Edges calls fn once per undirected edge with u < v. It stops early if fn
// returns false.
func (g *Graph) Edges(fn func(u, v int32) bool) {
	for u := int32(0); u < int32(g.N()); u++ {
		for _, v := range g.Neighbors(u) {
			if u < v {
				if !fn(u, v) {
					return
				}
			}
		}
	}
}

// Validate checks the structural invariants of the representation: offsets
// monotone, neighbour ids in range, adjacency sorted, no self-loops, no
// duplicate edges, and symmetry (u in adj(v) iff v in adj(u)). Generators
// and the Builder establish these invariants; Validate exists for tests and
// for graphs loaded from external files.
func (g *Graph) Validate() error {
	if err := g.validateLinear(); err != nil {
		return err
	}
	n := g.N()
	// Symmetry: since both directions must be present and adjacency lists
	// are strictly sorted and duplicate-free, it suffices to check that
	// every arc has its reverse.
	for v := int32(0); v < int32(n); v++ {
		for _, u := range g.Neighbors(v) {
			if !g.HasEdge(u, v) {
				return fmt.Errorf("graph: asymmetric edge (%d,%d)", v, u)
			}
		}
	}
	if len(g.neighbors)%2 != 0 {
		return errors.New("graph: odd number of arcs")
	}
	return nil
}

// validateLinear runs the O(n+m) subset of Validate: offsets monotone and
// bounded, neighbour ids in range, adjacency strictly sorted (hence
// duplicate-free), no self-loops. It establishes everything the process
// engines need for memory safety — every index computed from the arrays
// stays in bounds — without the O(m log d) symmetry probe. FromCSRTrusted
// relies on it for checksummed store files, where asymmetry would be a
// writer bug, not a load-time hazard.
func (g *Graph) validateLinear() error {
	n := g.N()
	if n == 0 {
		if len(g.neighbors) != 0 {
			return errors.New("graph: empty offsets with non-empty neighbours")
		}
		return nil
	}
	if g.offsets[0] != 0 {
		return fmt.Errorf("graph: offsets[0] = %d, want 0", g.offsets[0])
	}
	if g.offsets[n] != int64(len(g.neighbors)) {
		return fmt.Errorf("graph: offsets[n] = %d, want %d", g.offsets[n], len(g.neighbors))
	}
	for v := int32(0); v < int32(n); v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
		// Bound the upper offset before slicing: a monotone prefix can
		// still point past the neighbour array (with a decrease only
		// later), which would otherwise panic instead of erroring.
		if g.offsets[v+1] > int64(len(g.neighbors)) {
			return fmt.Errorf("graph: offsets[%d] = %d exceeds arc count %d", v+1, g.offsets[v+1], len(g.neighbors))
		}
		adj := g.Neighbors(v)
		for i, u := range adj {
			if u < 0 || u >= int32(n) {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbour %d", v, u)
			}
			if u == v {
				return fmt.Errorf("graph: self-loop at vertex %d", v)
			}
			if i > 0 && adj[i-1] >= u {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted at index %d", v, i)
			}
		}
	}
	return nil
}

// String summarises the graph for debugging.
func (g *Graph) String() string {
	r := "irregular"
	if reg, err := g.Regularity(); err == nil {
		r = fmt.Sprintf("%d-regular", reg)
	}
	name := g.name
	if name == "" {
		name = "graph"
	}
	return fmt.Sprintf("%s{n=%d, m=%d, %s}", name, g.N(), g.M(), r)
}
