package graph

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// ErrDuplicateEdge is returned by ParallelFromEdges for repeated edges:
// unlike Builder (which collapses duplicates while sorting the whole
// edge list anyway), the parallel packer never materialises a globally
// sorted edge list, so a duplicate is a caller bug it reports rather
// than a convenience it absorbs.
var ErrDuplicateEdge = errors.New("graph: duplicate edge")

// ParallelFromEdges builds a CSR graph from an explicit undirected edge
// list using all three packing stages in parallel: atomic degree
// counting over edge shards, a serial O(n) prefix sum, atomic-cursor
// scatter of both arc directions, and per-vertex-range adjacency
// sorting. The scatter order is scheduling-dependent but the final sort
// makes the output canonical — the resulting graph is byte-identical to
// FromEdges on the same (duplicate-free) input regardless of worker
// count, which is what lets cmd/graphbuild pack big edge lists on all
// cores and still honour the determinism contract.
//
// workers ≤ 0 means GOMAXPROCS. Self-loops, out-of-range endpoints and
// duplicate edges are rejected.
func ParallelFromEdges(name string, n int, pairs [][2]int32, workers int) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) {
		workers = max(1, len(pairs))
	}

	// Stage 1: validate endpoints and count degrees. counts is shared and
	// updated atomically; contention is spread across n words, so for the
	// sparse graphs this system runs (m ≈ 4n..16n) the adds rarely collide.
	counts := make([]int64, n+1) // last slot unused; keeps v+1 indexing safe below
	errs := make([]error, workers)
	var wg sync.WaitGroup
	chunk := (len(pairs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, len(pairs))
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w int, part [][2]int32) {
			defer wg.Done()
			for _, p := range part {
				u, v := p[0], p[1]
				if u == v {
					errs[w] = fmt.Errorf("graph: self-loop at vertex %d", u)
					return
				}
				if u < 0 || v < 0 || int(u) >= n || int(v) >= n {
					errs[w] = fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, n)
					return
				}
				atomic.AddInt64(&counts[u], 1)
				atomic.AddInt64(&counts[v], 1)
			}
		}(w, pairs[lo:hi])
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return nil, err
	}

	// Stage 2: serial prefix sum — O(n), never the bottleneck.
	offsets := make([]int64, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + counts[v]
	}

	// Stage 3: scatter both directions of every edge through per-vertex
	// atomic cursors. counts is recycled as the cursor array.
	cursor := counts
	copy(cursor, offsets[:n])
	neighbors := make([]int32, offsets[n])
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, min((w+1)*chunk, len(pairs))
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(part [][2]int32) {
			defer wg.Done()
			for _, p := range part {
				u, v := p[0], p[1]
				neighbors[atomic.AddInt64(&cursor[u], 1)-1] = v
				neighbors[atomic.AddInt64(&cursor[v], 1)-1] = u
			}
		}(pairs[lo:hi])
	}
	wg.Wait()

	// Stage 4: sort each adjacency (restoring the canonical order the
	// scatter scrambled) and reject duplicates, in parallel over vertex
	// ranges.
	vchunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*vchunk, min((w+1)*vchunk, n)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for v := lo; v < hi; v++ {
				adj := neighbors[offsets[v]:offsets[v+1]]
				sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
				for i := 1; i < len(adj); i++ {
					if adj[i-1] == adj[i] {
						errs[w] = fmt.Errorf("%w: {%d,%d}", ErrDuplicateEdge, v, adj[i])
						return
					}
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return &Graph{name: name, offsets: offsets, neighbors: neighbors}, nil
}

// firstError returns the lowest-indexed non-nil error, making the
// reported failure independent of goroutine scheduling.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
