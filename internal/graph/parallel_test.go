package graph

import (
	"errors"
	"slices"
	"testing"

	"cobrawalk/internal/rng"
)

// collectEdges extracts g's undirected edge list in u<v order.
func collectEdges(g *Graph) [][2]int32 {
	var pairs [][2]int32
	g.Edges(func(u, v int32) bool {
		pairs = append(pairs, [2]int32{u, v})
		return true
	})
	return pairs
}

// TestParallelFromEdgesMatchesBuilder is the equivalence pin: the
// parallel packer must produce the exact CSR arrays the serial Builder
// produces, for every worker count, including on shuffled input order.
func TestParallelFromEdgesMatchesBuilder(t *testing.T) {
	base, err := RandomRegular(600, 6, rng.NewStream(11, 1))
	if err != nil {
		t.Fatal(err)
	}
	pairs := collectEdges(base)
	// Shuffle: the packer must not depend on input order.
	r := rng.NewStream(99, 2)
	for i := len(pairs) - 1; i > 0; i-- {
		j := int(r.Uint64() % uint64(i+1))
		pairs[i], pairs[j] = pairs[j], pairs[i]
	}
	want, err := FromEdges("equiv", base.N(), pairs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8, 0} {
		got, err := ParallelFromEdges("equiv", base.N(), pairs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		wo, wn := want.CSR()
		go_, gn := got.CSR()
		if !slices.Equal(wo, go_) || !slices.Equal(wn, gn) {
			t.Fatalf("workers=%d: CSR differs from Builder output", workers)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}

func TestParallelFromEdgesRejects(t *testing.T) {
	cases := []struct {
		name  string
		n     int
		pairs [][2]int32
		is    error
	}{
		{"self-loop", 4, [][2]int32{{0, 1}, {2, 2}}, nil},
		{"out-of-range", 4, [][2]int32{{0, 5}}, nil},
		{"negative", 4, [][2]int32{{-1, 2}}, nil},
		{"duplicate", 4, [][2]int32{{0, 1}, {1, 0}}, ErrDuplicateEdge},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParallelFromEdges("bad", c.n, c.pairs, 2)
			if err == nil {
				t.Fatal("invalid input accepted")
			}
			if c.is != nil && !errors.Is(err, c.is) {
				t.Fatalf("err = %v, want %v", err, c.is)
			}
		})
	}
}

func TestParallelFromEdgesEmpty(t *testing.T) {
	g, err := ParallelFromEdges("isolated", 5, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 5 || g.M() != 0 {
		t.Fatalf("n=%d m=%d, want 5 isolated vertices", g.N(), g.M())
	}
}
