package graph

// CSR exposure: the native process engines (internal/process cobra/bips)
// run their inner loops directly over the packed adjacency arrays instead
// of going through per-call accessors, and external tooling can persist
// or rebuild graphs from the raw representation. The representation is
// documented on Graph: neighbours of v are neighbors[offsets[v]:offsets[v+1]],
// each adjacency strictly sorted, every undirected edge present in both
// directions.

// CSR returns the graph's packed adjacency arrays: offsets (length N()+1,
// monotone, offsets[0] == 0) and neighbors (length 2·M()). The slices are
// the graph's own storage — callers must treat them as read-only; writing
// through them corrupts the graph for every holder (cached graphs are
// shared across goroutines).
func (g *Graph) CSR() (offsets []int64, neighbors []int32) {
	return g.offsets, g.neighbors
}

// FromCSR constructs a graph directly from packed adjacency arrays,
// validating every structural invariant (monotone offsets, in-range sorted
// duplicate-free adjacencies, no self-loops, symmetry) before accepting
// them. The slices are adopted, not copied: the caller must not modify
// them afterwards. Use Builder/FromAdjacency when the input is an edge
// list; FromCSR is for deserialisers and tools that already hold the
// packed form.
func FromCSR(name string, offsets []int64, neighbors []int32) (*Graph, error) {
	g := &Graph{name: name, offsets: offsets, neighbors: neighbors}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// FromCSRTrusted is FromCSR minus the O(m log d) symmetry probe: it runs
// only the linear structural checks (monotone bounded offsets, in-range
// strictly-sorted self-loop-free adjacencies), which is exactly what the
// process engines need to index the arrays safely. It exists for sources
// that already guarantee the full invariants end-to-end — graphstore
// files carry a checksum over arrays that were symmetric when written, so
// re-proving symmetry on every mmap load would turn an O(1) load into an
// O(m log d) scan. Untrusted or hand-built inputs must use FromCSR.
func FromCSRTrusted(name string, offsets []int64, neighbors []int32) (*Graph, error) {
	g := &Graph{name: name, offsets: offsets, neighbors: neighbors}
	if err := g.validateLinear(); err != nil {
		return nil, err
	}
	return g, nil
}
