package graph

import "fmt"

// Complete returns the complete graph K_n: every pair of distinct vertices
// is adjacent, so the graph is (n-1)-regular. The paper treats K_n as the
// r = n-1 endpoint of the degree sweep in Theorem 1 and cites Dutta et
// al.'s O(log n) COBRA cover time on it.
func Complete(n int) (*Graph, error) {
	if n <= 0 {
		return nil, errEmptyGraph
	}
	b := NewBuilder(n, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(int32(u), int32(v))
		}
	}
	return b.Build(fmt.Sprintf("complete(n=%d)", n))
}

// Cycle returns the cycle C_n (2-regular, n >= 3). Cycles have spectral gap
// Θ(1/n²) and are used to exercise the poorly-expanding end of the λ sweep.
func Cycle(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: cycle needs n >= 3, got %d", n)
	}
	b := NewBuilder(n, n)
	for v := 0; v < n; v++ {
		b.AddEdge(int32(v), int32((v+1)%n))
	}
	return b.Build(fmt.Sprintf("cycle(n=%d)", n))
}

// Path returns the path graph P_n (irregular: endpoints have degree 1).
func Path(n int) (*Graph, error) {
	if n <= 0 {
		return nil, errEmptyGraph
	}
	b := NewBuilder(n, n-1)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(int32(v), int32(v+1))
	}
	return b.Build(fmt.Sprintf("path(n=%d)", n))
}

// Circulant returns the circulant graph Circ(n; offsets): vertex v is
// adjacent to v±d (mod n) for every d in offsets. Offsets must lie in
// [1, n/2]; the offset n/2 (for even n) contributes a single edge per
// vertex. Degree is 2·|offsets|, minus 1 when n/2 is included. Circulants
// give a deterministic family whose spectrum is a sum of cosines, handy for
// spectral-toolkit validation and tunable-gap sweeps.
func Circulant(n int, offsets []int) (*Graph, error) {
	if n <= 0 {
		return nil, errEmptyGraph
	}
	seen := make(map[int]bool, len(offsets))
	b := NewBuilder(n, n*len(offsets))
	for _, d := range offsets {
		if d < 1 || d > n/2 {
			return nil, fmt.Errorf("graph: circulant offset %d out of range [1,%d]", d, n/2)
		}
		if seen[d] {
			return nil, fmt.Errorf("graph: duplicate circulant offset %d", d)
		}
		seen[d] = true
		for v := 0; v < n; v++ {
			b.AddEdge(int32(v), int32((v+d)%n))
		}
	}
	return b.Build(fmt.Sprintf("circulant(n=%d,offsets=%v)", n, offsets))
}

// CompleteBipartite returns K_{a,b}: sides {0..a-1} and {a..a+b-1} with all
// cross edges. K_{r,r} is r-regular and bipartite, so λ_max = 1; it marks
// the boundary case the paper's theorems exclude (experiment E10).
func CompleteBipartite(a, b int) (*Graph, error) {
	if a <= 0 || b <= 0 {
		return nil, fmt.Errorf("graph: complete bipartite needs positive sides, got (%d,%d)", a, b)
	}
	bl := NewBuilder(a+b, a*b)
	for u := 0; u < a; u++ {
		for v := 0; v < b; v++ {
			bl.AddEdge(int32(u), int32(a+v))
		}
	}
	return bl.Build(fmt.Sprintf("complete-bipartite(a=%d,b=%d)", a, b))
}

// Star returns the star K_{1,n-1} with centre 0 (irregular; used in tests
// of non-regular behaviour).
func Star(n int) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: star needs n >= 2, got %d", n)
	}
	b := NewBuilder(n, n-1)
	for v := 1; v < n; v++ {
		b.AddEdge(0, int32(v))
	}
	return b.Build(fmt.Sprintf("star(n=%d)", n))
}
