package cli

import (
	"testing"

	"cobrawalk/internal/rng"
)

func TestBuildGraphSpecs(t *testing.T) {
	r := rng.New(1)
	cases := []struct {
		spec    string
		n, m    int
		regular int // -1 = don't check
	}{
		{"complete:8", 8, 28, 7},
		{"cycle:9", 9, 9, 2},
		{"path:5", 5, 4, -1},
		{"star:6", 6, 5, -1},
		{"hypercube:4", 16, 32, 4},
		{"torus:4x5", 20, 40, 4},
		{"grid:3x3", 9, 12, -1},
		{"rand-reg:32:4", 32, 64, 4},
		{"circulant:10:1,2", 10, 20, 4},
		{"paley:13", 13, 39, 6},
		{"margulis:4", 16, -1, -1},
		{"complete-bipartite:3:4", 7, 12, -1},
		{"ring-of-cliques:3:4", 12, 21, -1},
		{"barbell:3:2", 8, 9, -1},
		{"petersen", 10, 15, 3},
		{"prism", 6, 9, 3},
	}
	for _, tc := range cases {
		t.Run(tc.spec, func(t *testing.T) {
			g, err := BuildGraph(tc.spec, r)
			if err != nil {
				t.Fatal(err)
			}
			if err := g.Validate(); err != nil {
				t.Fatal(err)
			}
			if g.N() != tc.n {
				t.Fatalf("N = %d, want %d", g.N(), tc.n)
			}
			if tc.m >= 0 && g.M() != tc.m {
				t.Fatalf("M = %d, want %d", g.M(), tc.m)
			}
			if tc.regular >= 0 {
				reg, err := g.Regularity()
				if err != nil || reg != tc.regular {
					t.Fatalf("regularity = (%d, %v), want %d", reg, err, tc.regular)
				}
			}
		})
	}
}

func TestBuildGraphErdosRenyi(t *testing.T) {
	r := rng.New(2)
	g, err := BuildGraph("erdos-renyi:50:0.2", r)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 50 {
		t.Fatalf("N = %d", g.N())
	}
}

func TestBuildGraphErrors(t *testing.T) {
	r := rng.New(3)
	bad := []string{
		"",
		"unknown:5",
		"complete",       // missing size
		"complete:x",     // bad number
		"complete:5:9",   // too many args
		"torus:2x4",      // side < 3 rejected by generator
		"torus:axb",      // bad sides
		"rand-reg:10",    // missing degree
		"rand-reg:9:3",   // odd n*r
		"circulant:10:a", // bad offsets
		"erdos-renyi:10:x",
		"petersen:1", // named graphs take no args
		"paley:12",   // not ≡ 1 mod 4
	}
	for _, spec := range bad {
		if _, err := BuildGraph(spec, r); err == nil {
			t.Errorf("BuildGraph(%q) should fail", spec)
		}
	}
}

func TestBuildGraphArgArityPerFamily(t *testing.T) {
	// Every family must reject both missing and surplus arguments, and
	// non-numeric arguments where numbers are expected.
	r := rng.New(4)
	bad := []string{
		"cycle", "cycle:5:6", "cycle:x",
		"path", "path:3:3", "path:y",
		"star", "star:2:2",
		"hypercube", "hypercube:3:4", "hypercube:z",
		"torus", "torus:3x3:4",
		"grid", "grid:2x2:9", "grid:ax2",
		"rand-reg:10:4:1", "rand-reg:a:3", "rand-reg:10:b",
		"erdos-renyi", "erdos-renyi:10", "erdos-renyi:10:0.1:7", "erdos-renyi:q:0.1",
		"circulant", "circulant:10", "circulant:10:1:2", "circulant:w:1",
		"paley", "paley:13:17", "paley:v",
		"margulis", "margulis:3:3", "margulis:m",
		"complete-bipartite", "complete-bipartite:3", "complete-bipartite:3:4:5",
		"complete-bipartite:x:4", "complete-bipartite:3:x",
		"ring-of-cliques", "ring-of-cliques:3", "ring-of-cliques:3:4:5",
		"ring-of-cliques:x:4", "ring-of-cliques:3:x",
		"barbell", "barbell:3", "barbell:3:1:0", "barbell:x:1", "barbell:3:x",
		"prism:0",
	}
	for _, spec := range bad {
		if _, err := BuildGraph(spec, r); err == nil {
			t.Errorf("BuildGraph(%q) should fail", spec)
		}
	}
	// torus:4 is a valid 1-D torus (cycle C4).
	g, err := BuildGraph("torus:4", r)
	if err != nil || g.N() != 4 {
		t.Fatalf("torus:4 = (%v, %v)", g, err)
	}
}
