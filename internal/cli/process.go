package cli

import (
	"fmt"
	"strings"

	"cobrawalk/internal/process"
)

// ProcessList renders the registered process names for flag help text —
// "cobra, bips, push, push-pull, flood, kwalk" — so every binary's
// usage string tracks the registry instead of a hand-maintained list.
func ProcessList() string {
	return strings.Join(process.Names(), ", ")
}

// ParseProcesses parses a comma-separated process list, validating
// every name against the process registry. Empty items are skipped; an
// empty input yields nil (callers apply their own default).
func ParseProcesses(s string) ([]string, error) {
	var out []string
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		if _, err := process.Lookup(item); err != nil {
			return nil, fmt.Errorf("cli: unknown process %q (want one of %s)", item, ProcessList())
		}
		out = append(out, item)
	}
	return out, nil
}
