// Package cli holds the plumbing shared by the command-line tools: a
// graph-specification mini-language so every binary accepts the same
// -graph flag, and output helpers.
//
// Grammar (all sizes decimal integers):
//
//	complete:N            complete graph K_N
//	cycle:N               cycle C_N
//	path:N                path P_N
//	star:N                star K_{1,N-1}
//	hypercube:D           hypercube Q_D (2^D vertices)
//	torus:S1xS2[x...]     torus with the given side lengths
//	grid:S1xS2[x...]      grid (no wrap-around)
//	rand-reg:N:R          random R-regular graph on N vertices (connected)
//	erdos-renyi:N:P       G(N, P) random graph
//	circulant:N:D1,D2,..  circulant with offsets D1, D2, ...
//	paley:Q               Paley graph (prime Q ≡ 1 mod 4)
//	margulis:M            Margulis expander on M² vertices
//	complete-bipartite:A:B
//	ring-of-cliques:K:C
//	barbell:C:P
//	petersen | prism      named graphs
//	file:PATH             mmap a graph store file (.csrg, see cmd/graphbuild)
package cli

import (
	"fmt"
	"strconv"
	"strings"

	"cobrawalk/internal/graph"
	"cobrawalk/internal/graphstore"
	"cobrawalk/internal/rng"
)

// BuildGraph parses a graph specification and constructs the graph.
// Random families draw from the provided generator.
func BuildGraph(spec string, r *rng.Rand) (*graph.Graph, error) {
	// file: is cut before the colon split — the path may itself contain
	// colons, and it takes no further arguments.
	if path, ok := strings.CutPrefix(spec, "file:"); ok {
		if path == "" {
			return nil, fmt.Errorf("cli: file: needs a store file path")
		}
		return graphstore.Mmap(path)
	}
	parts := strings.Split(spec, ":")
	kind := parts[0]
	args := parts[1:]

	num := func(i int) (int, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("cli: %s needs at least %d argument(s)", kind, i+1)
		}
		v, err := strconv.Atoi(args[i])
		if err != nil {
			return 0, fmt.Errorf("cli: %s argument %d: %w", kind, i+1, err)
		}
		return v, nil
	}
	sides := func(i int) ([]int, error) {
		if i >= len(args) {
			return nil, fmt.Errorf("cli: %s needs a size list like 32x32", kind)
		}
		var out []int
		for _, s := range strings.Split(args[i], "x") {
			v, err := strconv.Atoi(s)
			if err != nil {
				return nil, fmt.Errorf("cli: bad side %q: %w", s, err)
			}
			out = append(out, v)
		}
		return out, nil
	}
	wantArgs := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("cli: %s takes %d argument(s), got %d", kind, n, len(args))
		}
		return nil
	}

	switch kind {
	case "complete":
		if err := wantArgs(1); err != nil {
			return nil, err
		}
		n, err := num(0)
		if err != nil {
			return nil, err
		}
		return graph.Complete(n)
	case "cycle":
		if err := wantArgs(1); err != nil {
			return nil, err
		}
		n, err := num(0)
		if err != nil {
			return nil, err
		}
		return graph.Cycle(n)
	case "path":
		if err := wantArgs(1); err != nil {
			return nil, err
		}
		n, err := num(0)
		if err != nil {
			return nil, err
		}
		return graph.Path(n)
	case "star":
		if err := wantArgs(1); err != nil {
			return nil, err
		}
		n, err := num(0)
		if err != nil {
			return nil, err
		}
		return graph.Star(n)
	case "hypercube":
		if err := wantArgs(1); err != nil {
			return nil, err
		}
		d, err := num(0)
		if err != nil {
			return nil, err
		}
		return graph.Hypercube(d)
	case "torus":
		if err := wantArgs(1); err != nil {
			return nil, err
		}
		s, err := sides(0)
		if err != nil {
			return nil, err
		}
		return graph.Torus(s...)
	case "grid":
		if err := wantArgs(1); err != nil {
			return nil, err
		}
		s, err := sides(0)
		if err != nil {
			return nil, err
		}
		return graph.Grid(s...)
	case "rand-reg":
		if err := wantArgs(2); err != nil {
			return nil, err
		}
		n, err := num(0)
		if err != nil {
			return nil, err
		}
		deg, err := num(1)
		if err != nil {
			return nil, err
		}
		return graph.RandomRegularConnected(n, deg, r)
	case "erdos-renyi":
		if err := wantArgs(2); err != nil {
			return nil, err
		}
		n, err := num(0)
		if err != nil {
			return nil, err
		}
		p, err := strconv.ParseFloat(args[1], 64)
		if err != nil {
			return nil, fmt.Errorf("cli: bad probability %q: %w", args[1], err)
		}
		return graph.ErdosRenyi(n, p, r)
	case "circulant":
		if err := wantArgs(2); err != nil {
			return nil, err
		}
		n, err := num(0)
		if err != nil {
			return nil, err
		}
		var offs []int
		for _, s := range strings.Split(args[1], ",") {
			v, err := strconv.Atoi(s)
			if err != nil {
				return nil, fmt.Errorf("cli: bad offset %q: %w", s, err)
			}
			offs = append(offs, v)
		}
		return graph.Circulant(n, offs)
	case "paley":
		if err := wantArgs(1); err != nil {
			return nil, err
		}
		q, err := num(0)
		if err != nil {
			return nil, err
		}
		return graph.Paley(q)
	case "margulis":
		if err := wantArgs(1); err != nil {
			return nil, err
		}
		m, err := num(0)
		if err != nil {
			return nil, err
		}
		return graph.Margulis(m)
	case "complete-bipartite":
		if err := wantArgs(2); err != nil {
			return nil, err
		}
		a, err := num(0)
		if err != nil {
			return nil, err
		}
		b, err := num(1)
		if err != nil {
			return nil, err
		}
		return graph.CompleteBipartite(a, b)
	case "ring-of-cliques":
		if err := wantArgs(2); err != nil {
			return nil, err
		}
		k, err := num(0)
		if err != nil {
			return nil, err
		}
		c, err := num(1)
		if err != nil {
			return nil, err
		}
		return graph.RingOfCliques(k, c)
	case "barbell":
		if err := wantArgs(2); err != nil {
			return nil, err
		}
		c, err := num(0)
		if err != nil {
			return nil, err
		}
		p, err := num(1)
		if err != nil {
			return nil, err
		}
		return graph.Barbell(c, p)
	case "petersen":
		if err := wantArgs(0); err != nil {
			return nil, err
		}
		return graph.Petersen()
	case "prism":
		if err := wantArgs(0); err != nil {
			return nil, err
		}
		return graph.PrismGraph()
	default:
		return nil, fmt.Errorf("cli: unknown graph family %q (see package cli docs for the grammar)", kind)
	}
}
