package walk

import (
	"math"
	"testing"

	"cobrawalk/internal/baseline"
	"cobrawalk/internal/core"
	"cobrawalk/internal/graph"
	"cobrawalk/internal/rng"
)

func mk(t *testing.T) func(*graph.Graph, error) *graph.Graph {
	return func(g *graph.Graph, err error) *graph.Graph {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestStationaryDistribution(t *testing.T) {
	g := mk(t)(graph.Star(5))
	pi, err := StationaryDistribution(g)
	if err != nil {
		t.Fatal(err)
	}
	// Star K_{1,4}: centre has degree 4 of 8 total: π = 1/2; leaves 1/8.
	if !approx(pi[0], 0.5, 1e-12) {
		t.Fatalf("centre π = %v", pi[0])
	}
	for v := 1; v < 5; v++ {
		if !approx(pi[v], 0.125, 1e-12) {
			t.Fatalf("leaf π = %v", pi[v])
		}
	}
	sum := 0.0
	for _, p := range pi {
		sum += p
	}
	if !approx(sum, 1, 1e-12) {
		t.Fatalf("π sums to %v", sum)
	}
	if _, err := StationaryDistribution(&graph.Graph{}); err == nil {
		t.Fatal("empty graph should fail")
	}
}

func TestHittingTimesCompleteGraph(t *testing.T) {
	// K_n: expected hitting time between distinct vertices is exactly n-1.
	for _, n := range []int{3, 5, 10, 25} {
		g := mk(t)(graph.Complete(n))
		h, err := ExpectedHittingTimes(g, 0)
		if err != nil {
			t.Fatal(err)
		}
		if h[0] != 0 {
			t.Fatalf("h[target] = %v", h[0])
		}
		for v := 1; v < n; v++ {
			if !approx(h[v], float64(n-1), 1e-8) {
				t.Fatalf("K%d: h[%d] = %v, want %d", n, v, h[v], n-1)
			}
		}
	}
}

func TestHittingTimesCycle(t *testing.T) {
	// C_n: h(u, v) = k(n-k) where k is the cyclic distance.
	n := 12
	g := mk(t)(graph.Cycle(n))
	h, err := ExpectedHittingTimes(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < n; v++ {
		k := v
		if n-v < k {
			k = n - v
		}
		want := float64(k * (n - k))
		if !approx(h[v], want, 1e-8) {
			t.Fatalf("C%d: h[%d] = %v, want %v", n, v, h[v], want)
		}
	}
}

func TestHittingTimesPath(t *testing.T) {
	// Path P_n with target endpoint 0 and a reflecting right endpoint:
	// the difference recurrence d[u+1] = d[u] - 2 with d[n-1] = 1 gives
	// h(u, 0) = u·(2(n-1) - u); the far endpoint hits at (n-1)².
	n := 9
	g := mk(t)(graph.Path(n))
	h, err := ExpectedHittingTimes(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < n; u++ {
		want := float64(u * (2*(n-1) - u))
		if !approx(h[u], want, 1e-8) {
			t.Fatalf("P%d: h[%d] = %v, want %v", n, u, h[u], want)
		}
	}
	if !approx(h[n-1], float64((n-1)*(n-1)), 1e-8) {
		t.Fatalf("endpoint hitting %v, want %d", h[n-1], (n-1)*(n-1))
	}
}

func TestHittingTimesValidation(t *testing.T) {
	g := mk(t)(graph.Complete(4))
	if _, err := ExpectedHittingTimes(g, -1); err == nil {
		t.Fatal("bad target should fail")
	}
	disc := mk(t)(graph.FromEdges("2e", 4, [][2]int32{{0, 1}, {2, 3}}))
	if _, err := ExpectedHittingTimes(disc, 0); err == nil {
		t.Fatal("disconnected graph should fail")
	}
	iso := mk(t)(graph.FromEdges("iso", 3, [][2]int32{{0, 1}}))
	if _, err := ExpectedHittingTimes(iso, 0); err == nil {
		t.Fatal("isolated vertex should fail")
	}
}

func TestHittingTimesMatchSimulation(t *testing.T) {
	// Cross-validate the exact solver against the COBRA k=1 simulator
	// (which is a simple random walk) on the Petersen graph.
	g := mk(t)(graph.Petersen())
	h, err := ExpectedHittingTimes(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.NewCobra(g, core.WithK(1))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	const trials = 3000
	const start = 7
	sum, sumSq := 0.0, 0.0
	for i := 0; i < trials; i++ {
		hit, err := c.RunUntilHit(start, 0, r)
		if err != nil {
			t.Fatal(err)
		}
		if hit < 0 {
			t.Fatal("capped hit")
		}
		sum += float64(hit)
		sumSq += float64(hit) * float64(hit)
	}
	mean := sum / trials
	se := math.Sqrt((sumSq/trials - mean*mean) / trials)
	if d := math.Abs(mean - h[start]); d > 5*se {
		t.Fatalf("simulated hitting %.3f vs exact %.3f (%.1f SE)", mean, h[start], d/se)
	}
}

func TestPairwiseHittingTimes(t *testing.T) {
	g := mk(t)(graph.Cycle(8))
	hit, err := PairwiseHittingTimes(g)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric for vertex-transitive graphs; diagonal zero.
	for u := 0; u < 8; u++ {
		if hit[u][u] != 0 {
			t.Fatalf("diagonal not zero: %v", hit[u][u])
		}
		for v := 0; v < 8; v++ {
			if !approx(hit[u][v], hit[v][u], 1e-8) {
				t.Fatalf("cycle hitting asymmetric: %v vs %v", hit[u][v], hit[v][u])
			}
		}
	}
	big := mk(t)(graph.Cycle(401))
	if _, err := PairwiseHittingTimes(big); err == nil {
		t.Fatal("oversized pairwise solve should fail")
	}
}

func TestMatthewsBoundsSandwichSimulatedCover(t *testing.T) {
	// The Matthews bounds must sandwich the empirical mean cover time of a
	// single random walk. Check on C16, K12 and Petersen.
	cases := []*graph.Graph{
		mk(t)(graph.Cycle(16)),
		mk(t)(graph.Complete(12)),
		mk(t)(graph.Petersen()),
	}
	r := rng.New(5)
	for _, g := range cases {
		hit, err := PairwiseHittingTimes(g)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi, err := MatthewsBounds(hit)
		if err != nil {
			t.Fatal(err)
		}
		if lo > hi {
			t.Fatalf("%s: bounds inverted: %v > %v", g.Name(), lo, hi)
		}
		const trials = 400
		sum := 0.0
		for i := 0; i < trials; i++ {
			res, err := baseline.RandomWalkCover(g, 0, baseline.Config{}, r)
			if err != nil || !res.Covered {
				t.Fatalf("%s: walk failed: %v", g.Name(), err)
			}
			sum += float64(res.Rounds)
		}
		mean := sum / trials
		// Allow 5% slack for Monte-Carlo error on the boundary.
		if mean < lo*0.95 || mean > hi*1.05 {
			t.Fatalf("%s: simulated cover %.1f outside Matthews [%.1f, %.1f]", g.Name(), mean, lo, hi)
		}
	}
}

func TestMatthewsBoundsValidation(t *testing.T) {
	if _, _, err := MatthewsBounds(nil); err == nil {
		t.Fatal("empty matrix should fail")
	}
	if _, _, err := MatthewsBounds([][]float64{{0}, {0}}); err == nil {
		t.Fatal("ragged matrix should fail")
	}
}

// TestCobraK1MeanCoverMatchesWalkTheory ties the ends together: COBRA with
// k = 1 on the cycle must exhibit the classical Θ(n²) cover time, here
// against the exact expectation n(n-1)/2.
func TestCobraK1MeanCoverMatchesWalkTheory(t *testing.T) {
	n := 16
	g := mk(t)(graph.Cycle(n))
	c, err := core.NewCobra(g, core.WithK(1))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(6)
	const trials = 600
	sum := 0.0
	for i := 0; i < trials; i++ {
		res, err := c.Run(0, r)
		if err != nil || !res.Covered {
			t.Fatal("run failed")
		}
		sum += float64(res.CoverTime)
	}
	mean := sum / trials
	want := float64(n*(n-1)) / 2
	if math.Abs(mean-want)/want > 0.1 {
		t.Fatalf("COBRA k=1 cycle cover mean %.1f, theory %.1f", mean, want)
	}
}
