// Package walk provides exact random-walk theory for validating the
// simulation stack: expected hitting times of the simple random walk by
// direct linear-system solution, the stationary distribution, and the
// Matthews cover-time bounds. COBRA with k = 1 *is* the simple random
// walk, so these closed forms anchor the k = 1 end of the branching
// spectrum, and the baseline walk protocols are tested against them.
package walk

import (
	"errors"
	"fmt"

	"cobrawalk/internal/graph"
)

// maxDense bounds the dense solvers (Gaussian elimination is O(n³) per
// target).
const maxDense = 2000

// StationaryDistribution returns π with π[v] = deg(v)/(2m), the stationary
// distribution of the simple random walk on any connected graph.
func StationaryDistribution(g *graph.Graph) ([]float64, error) {
	if g.N() == 0 {
		return nil, errors.New("walk: empty graph")
	}
	if g.M() == 0 {
		return nil, errors.New("walk: graph has no edges")
	}
	pi := make([]float64, g.N())
	total := 2 * float64(g.M())
	for v := 0; v < g.N(); v++ {
		pi[v] = float64(g.Degree(int32(v))) / total
	}
	return pi, nil
}

// ExpectedHittingTimes returns h where h[u] = E_u[first time the walk
// visits target], computed exactly by solving the absorbing-chain system
//
//	h[target] = 0,   h[u] = 1 + (1/deg u) Σ_{w ~ u} h[w]   (u ≠ target)
//
// by Gaussian elimination with partial pivoting. The graph must be
// connected (otherwise some hitting times are infinite) and have at most
// 2000 vertices.
func ExpectedHittingTimes(g *graph.Graph, target int32) ([]float64, error) {
	n := g.N()
	if n == 0 {
		return nil, errors.New("walk: empty graph")
	}
	if n > maxDense {
		return nil, fmt.Errorf("walk: dense solver limited to n <= %d, got %d", maxDense, n)
	}
	if target < 0 || int(target) >= n {
		return nil, fmt.Errorf("walk: target %d out of range [0,%d)", target, n)
	}
	if g.MinDegree() == 0 {
		return nil, errors.New("walk: graph has an isolated vertex")
	}
	if !g.IsConnected() {
		return nil, errors.New("walk: graph is disconnected; hitting times are infinite")
	}
	// Index the n-1 unknowns (all vertices except target).
	idx := make([]int, n) // vertex -> row, -1 for target
	vertices := make([]int32, 0, n-1)
	for v := int32(0); v < int32(n); v++ {
		if v == target {
			idx[v] = -1
			continue
		}
		idx[v] = len(vertices)
		vertices = append(vertices, v)
	}
	m := len(vertices)
	// Build A·h = b with A = I - Q (Q the transition matrix restricted to
	// non-target rows/columns) and b = 1.
	a := make([][]float64, m)
	b := make([]float64, m)
	for i, v := range vertices {
		row := make([]float64, m)
		row[i] = 1
		inv := 1 / float64(g.Degree(v))
		for _, w := range g.Neighbors(v) {
			if j := idx[w]; j >= 0 {
				row[j] -= inv
			}
		}
		a[i] = row
		b[i] = 1
	}
	if err := solveInPlace(a, b); err != nil {
		return nil, err
	}
	h := make([]float64, n)
	for i, v := range vertices {
		h[v] = b[i]
	}
	return h, nil
}

// solveInPlace solves a·x = b by Gaussian elimination with partial
// pivoting, leaving the solution in b.
func solveInPlace(a [][]float64, b []float64) error {
	m := len(a)
	for col := 0; col < m; col++ {
		// Pivot.
		piv := col
		best := abs(a[col][col])
		for r := col + 1; r < m; r++ {
			if v := abs(a[r][col]); v > best {
				best, piv = v, r
			}
		}
		if best < 1e-12 {
			return errors.New("walk: singular hitting-time system (disconnected?)")
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		// Eliminate below.
		inv := 1 / a[col][col]
		for r := col + 1; r < m; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			row, prow := a[r], a[col]
			for c := col; c < m; c++ {
				row[c] -= f * prow[c]
			}
			b[r] -= f * b[col]
		}
	}
	// Back-substitute.
	for r := m - 1; r >= 0; r-- {
		sum := b[r]
		row := a[r]
		for c := r + 1; c < m; c++ {
			sum -= row[c] * b[c]
		}
		b[r] = sum / row[r]
	}
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// PairwiseHittingTimes returns the full matrix H with H[u][v] =
// E_u[time to hit v], by solving one absorbing system per target. Cost is
// O(n⁴); intended for graphs with a few hundred vertices.
func PairwiseHittingTimes(g *graph.Graph) ([][]float64, error) {
	n := g.N()
	if n > 400 {
		return nil, fmt.Errorf("walk: pairwise solver limited to n <= 400, got %d", n)
	}
	h := make([][]float64, n)
	for v := int32(0); v < int32(n); v++ {
		col, err := ExpectedHittingTimes(g, v)
		if err != nil {
			return nil, err
		}
		for u := 0; u < n; u++ {
			if h[u] == nil {
				h[u] = make([]float64, n)
			}
			h[u][v] = col[u]
		}
	}
	return h, nil
}

// MatthewsBounds returns the Matthews lower and upper bounds on the
// expected cover time of the simple random walk, from the pairwise
// hitting-time matrix:
//
//	t_cov ≤ H_max · h(n-1)      t_cov ≥ H_min⁺ · h(n-1)
//
// where h(k) = 1 + 1/2 + … + 1/k is the harmonic number, H_max the largest
// pairwise hitting time and H_min⁺ the smallest hitting time between
// distinct vertices. (The sharper Matthews lower bound maximises over
// subsets; the whole-vertex-set form used here is the standard simple
// variant.)
func MatthewsBounds(hit [][]float64) (lo, hi float64, err error) {
	n := len(hit)
	if n < 2 {
		return 0, 0, errors.New("walk: need at least 2 vertices")
	}
	minH, maxH := -1.0, 0.0
	for u := 0; u < n; u++ {
		if len(hit[u]) != n {
			return 0, 0, errors.New("walk: ragged hitting matrix")
		}
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			h := hit[u][v]
			if h > maxH {
				maxH = h
			}
			if minH < 0 || h < minH {
				minH = h
			}
		}
	}
	harm := 0.0
	for k := 1; k <= n-1; k++ {
		harm += 1 / float64(k)
	}
	return minH * harm, maxH * harm, nil
}
