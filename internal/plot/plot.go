// Package plot renders simple line charts as standalone SVG documents —
// enough to regenerate the paper-style figures (cover time vs n, cover
// time vs 1/(1-λ)) from experiment series without any external plotting
// dependency.
package plot

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named polyline.
type Series struct {
	Name string
	X, Y []float64
}

// Plot is a single-axes line chart. Configure the fields, add series, then
// Render.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	// LogX / LogY switch the corresponding axis to log₁₀ scale; all data
	// on that axis must then be positive.
	LogX, LogY bool
	// Width and Height are the SVG canvas size in pixels (defaults
	// 640×420).
	Width, Height int

	series []Series
}

// seriesColors cycles through a small qualitative palette.
var seriesColors = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf"}

// Add appends a series. X and Y must be equal-length with at least one
// point.
func (p *Plot) Add(name string, x, y []float64) error {
	if len(x) != len(y) {
		return fmt.Errorf("plot: series %q: %d x-values vs %d y-values", name, len(x), len(y))
	}
	if len(x) == 0 {
		return fmt.Errorf("plot: series %q is empty", name)
	}
	p.series = append(p.series, Series{Name: name, X: append([]float64(nil), x...), Y: append([]float64(nil), y...)})
	return nil
}

func (p *Plot) dims() (w, h int) {
	w, h = p.Width, p.Height
	if w <= 0 {
		w = 640
	}
	if h <= 0 {
		h = 420
	}
	return w, h
}

// Render writes the chart as a standalone SVG document.
func (p *Plot) Render(w io.Writer) error {
	if len(p.series) == 0 {
		return errors.New("plot: no series to render")
	}
	tx, err := axisTransform(p.series, true, p.LogX)
	if err != nil {
		return err
	}
	ty, err := axisTransform(p.series, false, p.LogY)
	if err != nil {
		return err
	}
	width, height := p.dims()
	const marginL, marginR, marginT, marginB = 70, 20, 40, 50
	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)
	toPx := func(x, y float64) (float64, float64) {
		return float64(marginL) + tx.unit(x)*plotW,
			float64(marginT) + (1-ty.unit(y))*plotH
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n", width, height)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	if p.Title != "" {
		fmt.Fprintf(&sb, `<text x="%d" y="20" text-anchor="middle" font-size="14">%s</text>`+"\n", width/2, escape(p.Title))
	}
	// Axes box.
	fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%.0f" height="%.0f" fill="none" stroke="#333"/>`+"\n",
		marginL, marginT, plotW, plotH)
	// Ticks and grid.
	for _, tick := range tx.ticks() {
		px, _ := toPx(tick, ty.lo)
		fmt.Fprintf(&sb, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			px, marginT, px, float64(marginT)+plotH)
		fmt.Fprintf(&sb, `<text x="%.1f" y="%.1f" text-anchor="middle">%s</text>`+"\n",
			px, float64(marginT)+plotH+16, formatTick(tick))
	}
	for _, tick := range ty.ticks() {
		_, py := toPx(tx.lo, tick)
		fmt.Fprintf(&sb, `<line x1="%d" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, py, float64(marginL)+plotW, py)
		fmt.Fprintf(&sb, `<text x="%d" y="%.1f" text-anchor="end">%s</text>`+"\n",
			marginL-6, py+4, formatTick(tick))
	}
	// Axis labels.
	if p.XLabel != "" {
		fmt.Fprintf(&sb, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n",
			marginL+int(plotW/2), height-12, escape(p.XLabel))
	}
	if p.YLabel != "" {
		fmt.Fprintf(&sb, `<text x="16" y="%d" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
			marginT+int(plotH/2), marginT+int(plotH/2), escape(p.YLabel))
	}
	// Series.
	for i, s := range p.series {
		color := seriesColors[i%len(seriesColors)]
		var pts strings.Builder
		for j := range s.X {
			px, py := toPx(s.X[j], s.Y[j])
			if j > 0 {
				pts.WriteByte(' ')
			}
			fmt.Fprintf(&pts, "%.1f,%.1f", px, py)
		}
		fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n", pts.String(), color)
		for j := range s.X {
			px, py := toPx(s.X[j], s.Y[j])
			fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`+"\n", px, py, color)
		}
		// Legend entry.
		ly := marginT + 14 + 16*i
		fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			marginL+8, ly-4, marginL+28, ly-4, color)
		fmt.Fprintf(&sb, `<text x="%d" y="%d">%s</text>`+"\n", marginL+34, ly, escape(s.Name))
	}
	sb.WriteString("</svg>\n")
	_, err = io.WriteString(w, sb.String())
	return err
}

// transform maps data coordinates to [0, 1] on one axis.
type transform struct {
	lo, hi float64
	log    bool
}

func axisTransform(series []Series, isX, log bool) (transform, error) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		vals := s.Y
		if isX {
			vals = s.X
		}
		for _, v := range vals {
			if log && v <= 0 {
				return transform{}, fmt.Errorf("plot: log axis requires positive values, got %v in %q", v, s.Name)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return transform{}, fmt.Errorf("plot: non-finite value %v in %q", v, s.Name)
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if lo == hi { // degenerate range: widen symmetrically
		if log {
			lo, hi = lo/2, hi*2
		} else {
			lo, hi = lo-1, hi+1
		}
	}
	return transform{lo: lo, hi: hi, log: log}, nil
}

// unit maps v into [0, 1].
func (t transform) unit(v float64) float64 {
	if t.log {
		return (math.Log10(v) - math.Log10(t.lo)) / (math.Log10(t.hi) - math.Log10(t.lo))
	}
	return (v - t.lo) / (t.hi - t.lo)
}

// ticks returns 4-6 tick positions across the range (powers of ten on log
// axes when the range allows).
func (t transform) ticks() []float64 {
	if t.log {
		loExp := int(math.Floor(math.Log10(t.lo)))
		hiExp := int(math.Ceil(math.Log10(t.hi)))
		var out []float64
		for e := loExp; e <= hiExp; e++ {
			v := math.Pow(10, float64(e))
			if v >= t.lo && v <= t.hi {
				out = append(out, v)
			}
		}
		if len(out) >= 2 {
			return out
		}
		// Too narrow for decade ticks: fall through to linear spacing.
	}
	const n = 5
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		f := float64(i) / (n - 1)
		if t.log {
			out = append(out, math.Pow(10, math.Log10(t.lo)+f*(math.Log10(t.hi)-math.Log10(t.lo))))
		} else {
			out = append(out, t.lo+f*(t.hi-t.lo))
		}
	}
	return out
}

func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 10000 || (av < 0.01 && av > 0):
		return fmt.Sprintf("%.1e", v)
	case av >= 100:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.4g", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
