package plot

import (
	"bytes"
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	var p Plot
	p.Title = "demo <chart>"
	p.XLabel = "n"
	p.YLabel = "rounds"
	if err := p.Add("a", []float64{1, 2, 3}, []float64{10, 20, 15}); err != nil {
		t.Fatal(err)
	}
	if err := p.Add("b", []float64{1, 2, 3}, []float64{5, 8, 30}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "polyline", "demo &lt;chart&gt;", "rounds", "</svg>"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q", want)
		}
	}
	// The SVG must be well-formed XML.
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG is not well-formed XML: %v", err)
		}
	}
}

func TestRenderLogAxes(t *testing.T) {
	var p Plot
	p.LogX, p.LogY = true, true
	if err := p.Add("s", []float64{10, 100, 1000, 10000}, []float64{1, 2, 4, 8}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Render(&buf); err != nil {
		t.Fatal(err)
	}
	// Decade ticks should appear.
	if !strings.Contains(buf.String(), "100") {
		t.Fatal("log axis ticks missing")
	}
}

func TestRenderErrors(t *testing.T) {
	var p Plot
	if err := p.Render(&bytes.Buffer{}); err == nil {
		t.Fatal("empty plot should fail")
	}
	if err := p.Add("bad", []float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if err := p.Add("empty", nil, nil); err == nil {
		t.Fatal("empty series should fail")
	}
	var q Plot
	q.LogY = true
	if err := q.Add("neg", []float64{1}, []float64{-1}); err != nil {
		t.Fatal(err)
	}
	if err := q.Render(&bytes.Buffer{}); err == nil {
		t.Fatal("log axis with non-positive data should fail")
	}
	var r Plot
	if err := r.Add("nan", []float64{1}, []float64{math.NaN()}); err != nil {
		t.Fatal(err)
	}
	if err := r.Render(&bytes.Buffer{}); err == nil {
		t.Fatal("NaN data should fail")
	}
}

func TestRenderDegenerateRange(t *testing.T) {
	// A single point (zero range on both axes) must still render.
	var p Plot
	if err := p.Add("pt", []float64{5}, []float64{7}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "circle") {
		t.Fatal("point marker missing")
	}
}

func TestTransformUnit(t *testing.T) {
	lin := transform{lo: 0, hi: 10}
	if lin.unit(0) != 0 || lin.unit(10) != 1 || lin.unit(5) != 0.5 {
		t.Fatal("linear transform broken")
	}
	lg := transform{lo: 1, hi: 100, log: true}
	if math.Abs(lg.unit(10)-0.5) > 1e-12 {
		t.Fatalf("log transform: unit(10) = %v", lg.unit(10))
	}
}

func TestFormatTick(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{100000, "1.0e+05"},
		{123, "123"},
		{3.5, "3.5"},
		{0.25, "0.25"},
		{0.001, "1.0e-03"},
	}
	for _, tc := range cases {
		if got := formatTick(tc.in); got != tc.want {
			t.Fatalf("formatTick(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
