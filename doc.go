// Package cobrawalk is a simulation laboratory for the coalescing-branching
// random walk (COBRA) and its dual epidemic process (BIPS), reproducing
//
//	Cooper, Radzik, Rivera — "The Coalescing-Branching Random Walk on
//	Expanders and the Dual Epidemic Process", PODC 2016.
//
// COBRA is an information-propagation protocol: every informed vertex
// pushes to k uniformly random neighbours and then goes quiet until
// re-informed; duplicate deliveries coalesce. The paper's headline result
// (Theorem 1) bounds the cover time on n-vertex regular graphs by
// O(log n/(1-λ)³), where λ is the second eigenvalue (in absolute value) of
// the random-walk transition matrix — O(log n) on expanders, independent
// of the degree. Its key tool is an exact duality (Theorem 4) with BIPS, a
// discrete SIS-type epidemic with a persistent source:
//
//	P̂(Hit_u(v) > t)  =  P(u ∉ A_t | A_0 = {v}).
//
// This package is the public facade over the internal implementation:
//
//   - graph substrate: CSR graphs and the generator families used in the
//     paper's analysis (random regular expanders, K_n, cycles, tori,
//     hypercubes, Paley graphs, ...);
//   - spectral toolkit: λ₂, λ_n, λ_max, spectral gap, the Theorem 1/2 time
//     scale T = log n/(1-λ)³;
//   - the COBRA and BIPS processes with integer branching k and fractional
//     branching 1+ρ (Theorem 3 / Corollary 1), fully instrumented;
//   - the duality machinery: Monte-Carlo estimation and an exact
//     subset-space verifier for graphs up to 13 vertices;
//   - Lemma 1 growth bounds, three-phase trajectory analysis (Lemmas 2-4);
//   - a deterministic parallel Monte-Carlo harness with two aggregation
//     modes — materialise every trial (sim.Run) or stream trials into
//     constant-memory mergeable accumulators (sim.Reduce), so ensembles
//     of 10⁵+ trials run in O(1) memory with bit-identical results for
//     any worker count;
//   - batch and streaming statistics: summaries, confidence intervals,
//     scaling-law fits, Welford streams, quantile sketches, histograms
//     (re-exported here as Stream, QuantileSketch, Digest, Histogram);
//   - a pluggable metrics layer: a MetricsCollector rides any process's
//     round-observer hook and records per-trial scalars plus per-round
//     series in reusable zero-alloc buffers, and a TrajectoryDigest
//     folds those series across an ensemble into mergeable per-round
//     p10/p50/p90 quantile bands — the paper's phase plots as data;
//   - a declarative, resumable parameter-sweep engine: a SweepSpec names
//     a grid over family × size × degree × process × branching plus a
//     metric set (rounds, transmissions, peak-active, half-coverage,
//     and the coverage/frontier trajectory bands), RunSweep executes
//     its deterministic points across a worker pool, and artifact
//     directories make interrupted sweeps resume byte-identically
//     (see also cmd/sweep);
//   - a concurrency-safe graph cache (GraphCache): LRU by vertex budget
//     with single-flighted builds, shared across sweep points and — in
//     the cobrawalkd daemon — across jobs, so repeated topologies skip
//     graph construction without affecting a single result byte.
//
// # Quick start
//
//	r := cobrawalk.NewRand(1)
//	g, err := cobrawalk.RandomRegular(4096, 8, r)
//	if err != nil { ... }
//	rep, err := cobrawalk.Analyze(g)        // λ, gap, theorem T
//	proc, err := cobrawalk.NewCobra(g)      // k = 2 by default
//	res, err := proc.Run(0, r)              // res.CoverTime, res.Transmissions
//
// The runnable programs under cmd/ (cobrasim, bipssim, sweep, graphinfo,
// experiments, figures, and the cobrawalkd HTTP simulation service) and
// the examples/ directory exercise this API end to end; the experiment
// suite E1-E15 reproduces every quantitative claim in the paper.
// README.md covers installation and the command-line tools, DESIGN.md
// the architecture (§10 for the service layer, §11 for the metrics
// layer), and EXPERIMENTS.md the per-experiment tables, the paper
// claim each one reproduces, and the paper-figure → metric mapping.
package cobrawalk
