// Broadcast: the systems trade-off the paper's introduction frames —
// propagate a message to all n nodes quickly while capping how many
// transmissions each node makes per round. COBRA (k pushes per informed
// node, then silence until re-informed) is compared against push (every
// informed node pushes forever), push-pull, flooding (degree transmissions
// per node per round) and k independent random walks on the same expander
// overlay network.
package main

import (
	"fmt"

	"cobrawalk"
	"cobrawalk/internal/obs"
)

const (
	nodes  = 4096
	degree = 8
	runs   = 20
	seed   = 11
)

func main() {
	logger := obs.DefaultLogger()
	r := cobrawalk.NewRand(seed)
	g, err := cobrawalk.RandomRegularConnected(nodes, degree, r)
	if err != nil {
		obs.Fatal(logger, "building overlay", "err", err)
	}
	fmt.Printf("overlay: %s\n\n", g)
	fmt.Println("protocol        mean rounds   total msgs   msgs/node   per-node/round cap")
	fmt.Println("--------------------------------------------------------------------------")

	// COBRA k = 2.
	proc, err := cobrawalk.NewCobra(g)
	if err != nil {
		obs.Fatal(logger, "creating COBRA process", "err", err)
	}
	var rounds, msgs float64
	for i := 0; i < runs; i++ {
		res, err := proc.Run(0, r)
		if err != nil {
			obs.Fatal(logger, "COBRA run failed", "run", i, "err", err)
		}
		if !res.Covered {
			obs.Fatal(logger, "COBRA run did not cover", "run", i)
		}
		rounds += float64(res.CoverTime)
		msgs += float64(res.Transmissions)
	}
	printRow("COBRA k=2", rounds/runs, msgs/runs, "2")

	type proto struct {
		name string
		cap  string
		run  func(*cobrawalk.Graph, int32, cobrawalk.BaselineConfig, *cobrawalk.Rand) (cobrawalk.BaselineResult, error)
	}
	protos := []proto{
		{"push", "1 (never quiesces)", cobrawalk.Push},
		{"push-pull", "2", cobrawalk.PushPull},
		{"flood", fmt.Sprintf("%d (degree)", degree), cobrawalk.Flood},
		{"random walk", "1 global", cobrawalk.RandomWalkCover},
		{"2 walks", "2 global", func(g *cobrawalk.Graph, s int32, c cobrawalk.BaselineConfig, r *cobrawalk.Rand) (cobrawalk.BaselineResult, error) {
			return cobrawalk.MultiWalkCover(g, s, 2, c, r)
		}},
	}
	for _, p := range protos {
		var rounds, msgs float64
		for i := 0; i < runs; i++ {
			res, err := p.run(g, 0, cobrawalk.BaselineConfig{MaxRounds: 1 << 24}, r)
			if err != nil {
				obs.Fatal(logger, "baseline run failed", "protocol", p.name, "err", err)
			}
			if !res.Covered {
				obs.Fatal(logger, "baseline did not cover", "protocol", p.name)
			}
			rounds += float64(res.Rounds)
			msgs += float64(res.Transmissions)
		}
		printRow(p.name, rounds/runs, msgs/runs, p.cap)
	}

	fmt.Println()
	fmt.Println("COBRA's point (paper §1): round-optimal up to constants, with a hard per-node")
	fmt.Println("budget of k messages per round and no state beyond one round of memory.")
}

func printRow(name string, rounds, msgs float64, cap string) {
	fmt.Printf("%-15s %11.1f %12.0f %11.2f   %s\n", name, rounds, msgs, msgs/nodes, cap)
}
