// Duality: a demonstration of Theorem 4, the paper's central identity
//
//	P̂(Hit_u(v) > t)  =  P(u ∉ A_t | A_0 = {v}),
//
// on the Petersen graph. The left side is the survival function of the
// COBRA hitting time of v started from u; the right side is the exclusion
// probability of u in the dual BIPS epidemic with persistent source v.
// Both sides are computed two ways: exactly (subset-space dynamic program
// over all 2^10 infected/active sets) and by Monte Carlo, so the printout
// shows four columns collapsing onto one curve.
package main

import (
	"fmt"

	"cobrawalk"
	"cobrawalk/internal/obs"
)

func main() {
	const (
		u, v    = 3, 0
		horizon = 10
		trials  = 20000
		seed    = 7
	)
	logger := obs.DefaultLogger()

	g, err := cobrawalk.Petersen()
	if err != nil {
		obs.Fatal(logger, "building Petersen graph", "err", err)
	}
	fmt.Println("graph:", g)
	fmt.Printf("u = %d (COBRA start), v = %d (COBRA target = BIPS source)\n\n", u, v)

	exact, err := cobrawalk.ComputeExactDuality(g, v, horizon, cobrawalk.DefaultBranching)
	if err != nil {
		obs.Fatal(logger, "exact duality DP failed", "err", err)
	}
	mc, err := cobrawalk.EstimateDuality(g, u, v, horizon, trials, cobrawalk.DefaultBranching, seed)
	if err != nil {
		obs.Fatal(logger, "Monte-Carlo duality failed", "err", err)
	}

	exactSurv := exact.MarginalSurvival(u)
	exactExcl := exact.MarginalExclusion(u)
	fmt.Println(" t   exact P(Hit>t)  exact P(u∉A_t)  MC COBRA   MC BIPS")
	fmt.Println("---------------------------------------------------------")
	for t := 0; t <= horizon; t++ {
		fmt.Printf("%2d      %.6f        %.6f     %.4f     %.4f\n",
			t, exactSurv[t], exactExcl[t], mc.CobraSurvival[t], mc.BipsExclusion[t])
	}
	fmt.Printf("\nexact max |LHS-RHS| over ALL 2^%d start sets and t ≤ %d: %.2e (float roundoff)\n",
		g.N(), horizon, exact.MaxAbsError())
	fmt.Printf("Monte-Carlo max |Δ| = %.4f, max z-score = %.2f over %d trials/side\n",
		mc.MaxAbsDiff(), mc.MaxZScore(), trials)
	fmt.Println("\nTheorem 4 verified: the COBRA walk and the BIPS epidemic are exact time-reversal duals.")
}
