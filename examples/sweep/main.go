// Sweep example: the paper's branching spectrum as one declarative grid.
// A single SweepSpec sweeps Branching{K, Rho} over K ∈ {1, 2, 3} and
// ρ ∈ {0, 0.5} on a random-regular expander and prints the cover-time
// digest of every point — Theorem 1's k = 2 regime, Theorem 3's
// fractional 1+ρ regime, and the k = 1 random-walk end of the spectrum
// side by side, without writing a single loop over the grid.
package main

import (
	"context"
	"fmt"

	"cobrawalk"
	"cobrawalk/internal/obs"
)

func main() {
	spec := cobrawalk.SweepSpec{
		Name:     "branching-spectrum",
		Families: []string{"rand-reg"},
		Sizes:    []int{512},
		Degrees:  []int{8},
		Branchings: []cobrawalk.Branching{
			{K: 1}, {K: 1, Rho: 0.5},
			{K: 2}, {K: 2, Rho: 0.5},
			{K: 3}, {K: 3, Rho: 0.5},
		},
		Trials: 40,
		Seed:   1,
	}

	rep, err := cobrawalk.RunSweep(context.Background(), spec, cobrawalk.SweepOptions{})
	if err != nil {
		obs.Fatal(obs.DefaultLogger(), "sweep failed", "err", err)
	}

	fmt.Printf("COBRA cover time on rand-8-reg n=512, %d trials per point\n\n", spec.Trials)
	fmt.Printf("%-8s %8s %8s %8s %8s %8s\n", "branch", "E[k]", "mean", "p50", "p95", "max")
	for _, res := range rep.Results {
		b := res.Branching
		s := res.Metric(cobrawalk.SweepMetricRounds)
		fmt.Printf("%-8s %8.1f %8.2f %8.1f %8.1f %8.0f\n",
			b, b.Expected(), s.Mean, s.P50, s.P95, s.Max)
	}
	fmt.Println("\nTheorem 3: expected branching 1+ρ already gives O(log n) cover —")
	fmt.Println("watch the k=1+ρ0.50 row sit far below k=1 (a plain random walk).")
}
