// Quickstart: build a random regular expander, measure its spectral gap,
// and run the COBRA process to cover it — the minimal end-to-end use of
// the public API and a live demonstration of Theorem 1's O(log n) claim.
package main

import (
	"fmt"
	"math"

	"cobrawalk"
	"cobrawalk/internal/obs"
)

func main() {
	const (
		n    = 4096
		deg  = 8
		runs = 25
		seed = 1
	)
	logger := obs.DefaultLogger()

	r := cobrawalk.NewRand(seed)
	g, err := cobrawalk.RandomRegularConnected(n, deg, r)
	if err != nil {
		obs.Fatal(logger, "building graph", "err", err)
	}
	fmt.Println("graph:", g)

	rep, err := cobrawalk.Analyze(g)
	if err != nil {
		obs.Fatal(logger, "spectral analysis", "err", err)
	}
	fmt.Printf("λmax = %.4f, spectral gap = %.4f\n", rep.LambdaMax, rep.Gap)
	fmt.Printf("Theorem 1 time scale T = log n/(1-λ)³ = %.1f rounds\n", rep.TheoremT())

	proc, err := cobrawalk.NewCobra(g) // k = 2, the paper's setting
	if err != nil {
		obs.Fatal(logger, "creating process", "err", err)
	}
	covers := make([]float64, 0, runs)
	var msgs float64
	for i := 0; i < runs; i++ {
		res, err := proc.Run(0, r)
		if err != nil {
			obs.Fatal(logger, "run failed", "run", i, "err", err)
		}
		if !res.Covered {
			obs.Fatal(logger, "run did not cover the graph", "run", i)
		}
		covers = append(covers, float64(res.CoverTime))
		msgs += float64(res.Transmissions)
	}
	s, err := cobrawalk.Summarize(covers)
	if err != nil {
		obs.Fatal(logger, "summarising cover times", "err", err)
	}
	fmt.Printf("\nCOBRA k=2 cover time over %d runs: mean %.1f, min %.0f, max %.0f rounds\n",
		runs, s.Mean, s.Min, s.Max)
	fmt.Printf("that is %.2f × log₂(n) — Theorem 1 says this ratio stays O(1) as n grows\n",
		s.Mean/math.Log2(n))
	fmt.Printf("mean transmissions per run: %.0f (%.2f per vertex; cap is k=2 per active vertex per round)\n",
		msgs/runs, msgs/runs/n)
}
