// Trajectory example: the paper's phase plots as one trajectory-enabled
// sweep. A single SweepSpec runs COBRA and its dual BIPS on the same
// realised expander with the "coverage" and "frontier" trajectory
// metrics, and the per-round p10/p50/p90 quantile bands come back on the
// sweep record — the three-phase growth of Lemmas 2-4 (slow start,
// exponential middle, saturation tail) visible as an ASCII band chart,
// no bespoke observer code anywhere.
package main

import (
	"context"
	"fmt"
	"strings"

	"cobrawalk"
	"cobrawalk/internal/obs"
)

func main() {
	spec := cobrawalk.SweepSpec{
		Name:      "phase-bands",
		Families:  []string{"rand-reg"},
		Sizes:     []int{1024},
		Degrees:   []int{8},
		Processes: []string{"cobra", "bips"},
		Metrics: []string{
			cobrawalk.SweepMetricRounds,
			cobrawalk.SweepMetricHalfCoverage,
			cobrawalk.SweepMetricCoverage,
			cobrawalk.SweepMetricFrontier,
		},
		Trials: 60,
		Seed:   7,
	}

	logger := obs.DefaultLogger()
	rep, err := cobrawalk.RunSweep(context.Background(), spec, cobrawalk.SweepOptions{})
	if err != nil {
		obs.Fatal(logger, "sweep failed", "err", err)
	}

	for _, res := range rep.Results {
		band, ok := res.Trajectory(cobrawalk.SweepMetricFrontier)
		if !ok {
			obs.Fatal(logger, "point has no frontier trajectory", "point", res.ID)
		}
		rounds := res.Metric(cobrawalk.SweepMetricRounds)
		half := res.Metric(cobrawalk.SweepMetricHalfCoverage)
		fmt.Printf("%s on %s n=%d: completion mean %.1f rounds, half coverage at %.1f\n",
			res.Process, res.Family, res.GraphN, rounds.Mean, half.Mean)
		fmt.Printf("%6s %6s %8s %8s %8s  %s\n", "round", "n", "p10", "p50", "p90", "p50 band")
		for k := range band.Rounds {
			// Print every 4th column of the exact prefix to keep the
			// chart short; the geometric tail is already sparse.
			if band.Rounds[k] <= 64 && band.Rounds[k]%4 != 0 {
				continue
			}
			bar := strings.Repeat("#", int(band.P50[k]*40/float64(res.GraphN)))
			fmt.Printf("%6d %6d %8.1f %8.1f %8.1f  %s\n",
				band.Rounds[k], band.N[k], band.P10[k], band.P50[k], band.P90[k], bar)
		}
		fmt.Println()
	}
	fmt.Println("the duality (Theorem 4): COBRA's frontier and BIPS's infected set")
	fmt.Println("trace the same three phases — compare the two band charts above.")
}
