// Epidemic: the BVDV herd scenario that motivates the BIPS model in the
// paper (§1). Bovine viral diarrhea virus produces persistently infected
// (PI) animals: one PI calf introduced into a herd sheds virus
// continuously while every other animal's infection status refreshes
// through repeated contacts — exactly the "biased infection with
// persistent source" dynamics.
//
// The herd is modelled two ways: a penned barn (ring of cliques: animals
// mix freely within a pen, adjacent pens share a fence line) and a
// well-mixed feedlot (random regular contact graph with the same mean
// number of contacts). The run reports how long the PI animal takes to
// expose the whole herd under each structure and contact rate, and the
// three epidemic phases (initial establishment, exponential spread,
// mop-up) that the paper's Lemmas 2-4 formalise.
package main

import (
	"fmt"
	"math"

	"cobrawalk"
	"cobrawalk/internal/obs"
)

const (
	pens       = 25
	perPen     = 40
	herdSize   = pens * perPen // 1000 animals
	seed       = 2026
	replicates = 30
)

func main() {
	logger := obs.DefaultLogger()
	r := cobrawalk.NewRand(seed)

	penned, err := buildPennedHerd()
	if err != nil {
		obs.Fatal(logger, "building penned herd", "err", err)
	}
	// Feedlot: same herd size, mean degree matched to the penned barn.
	meanDeg := 2 * penned.M() / penned.N()
	feedlot, err := cobrawalk.RandomRegularConnected(herdSize, meanDeg, r)
	if err != nil {
		obs.Fatal(logger, "building feedlot graph", "err", err)
	}

	fmt.Printf("herd size: %d animals (%d pens × %d)\n\n", herdSize, pens, perPen)
	for _, scenario := range []struct {
		name string
		g    *cobrawalk.Graph
	}{
		{"penned barn (ring of cliques)", penned},
		{fmt.Sprintf("well-mixed feedlot (%d contacts/animal)", meanDeg), feedlot},
	} {
		rep, err := cobrawalk.Analyze(scenario.g)
		if err != nil {
			obs.Fatal(logger, "spectral analysis failed", "scenario", scenario.name, "err", err)
		}
		fmt.Printf("=== %s ===\n", scenario.name)
		fmt.Printf("contact graph: %s, spectral gap %.4f\n", scenario.g, rep.Gap)
		for _, contacts := range []cobrawalk.Branching{
			{K: 1},           // one risky contact per animal per day
			{K: 1, Rho: 0.5}, // one, sometimes two (Corollary 1's 1+ρ)
			{K: 2},           // two (the paper's k = 2)
		} {
			if err := runScenario(scenario.g, contacts, r); err != nil {
				obs.Fatal(logger, "scenario failed", "scenario", scenario.name, "err", err)
			}
		}
		fmt.Println()
	}
	fmt.Println("note: with k=1 every animal refreshes from a single contact — the infection")
	fmt.Println("struggles to establish (the paper: k=1 COBRA is a plain random walk, cover Ω(n log n));")
	fmt.Println("any extra contact rate ρ>0 restores O(log n)-type spread (Theorem 3 / Corollary 1).")
}

// buildPennedHerd assembles the barn contact graph: a clique per pen plus
// fence-line contacts between adjacent pens (eight shared fence positions).
func buildPennedHerd() (*cobrawalk.Graph, error) {
	b := cobrawalk.NewBuilder(herdSize, pens*perPen*(perPen-1)/2+pens*8)
	for pen := 0; pen < pens; pen++ {
		base := pen * perPen
		for i := 0; i < perPen; i++ {
			for j := i + 1; j < perPen; j++ {
				b.AddEdge(int32(base+i), int32(base+j))
			}
		}
		next := ((pen + 1) % pens) * perPen
		for f := 0; f < 8; f++ {
			b.AddEdge(int32(base+perPen-1-f), int32(next+f))
		}
	}
	return b.Build("penned-herd")
}

func runScenario(g *cobrawalk.Graph, contacts cobrawalk.Branching, r *cobrawalk.Rand) error {
	proc, err := cobrawalk.NewBIPS(g,
		cobrawalk.WithBranching(contacts),
		cobrawalk.WithMaxRounds(200_000))
	if err != nil {
		return err
	}
	smallTarget := int(math.Ceil(4 * math.Log2(float64(g.N()))))
	var days, p1s, p2s, p3s []float64
	failed := 0
	for rep := 0; rep < replicates; rep++ {
		res, err := proc.Run(0, r) // animal 0 is the PI calf
		if err != nil {
			return err
		}
		if !res.Infected {
			failed++
			continue
		}
		days = append(days, float64(res.InfectionTime))
		ph := cobrawalk.DetectPhases(res.Sizes, g.N(), smallTarget)
		p1, p2, p3 := ph.PhaseLengths()
		p1s = append(p1s, float64(p1))
		p2s = append(p2s, float64(p2))
		p3s = append(p3s, float64(p3))
	}
	if len(days) == 0 {
		fmt.Printf("  contacts %-10s herd never fully exposed within the cap (%d/%d runs failed)\n",
			contacts, failed, replicates)
		return nil
	}
	s, err := cobrawalk.Summarize(days)
	if err != nil {
		return err
	}
	fmt.Printf("  contacts %-10s full exposure in %6.1f days (p95 %5.0f)  phases: establish %4.1f, spread %4.1f, mop-up %4.1f\n",
		contacts, s.Mean, s.P95, mean(p1s), mean(p2s), mean(p3s))
	return nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
