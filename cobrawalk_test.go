package cobrawalk_test

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"testing"

	"cobrawalk"
)

func TestFacadeEndToEnd(t *testing.T) {
	r := cobrawalk.NewRand(1)
	g, err := cobrawalk.RandomRegularConnected(256, 8, r)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cobrawalk.Analyze(g)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Gap <= 0 || rep.Gap >= 1 {
		t.Fatalf("gap = %v", rep.Gap)
	}

	proc, err := cobrawalk.NewCobra(g, cobrawalk.WithHitTimes())
	if err != nil {
		t.Fatal(err)
	}
	res, err := proc.Run(0, r)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Covered || res.CoverTime < int(math.Log2(256)) {
		t.Fatalf("cover result: %+v", res)
	}

	epi, err := cobrawalk.NewBIPS(g)
	if err != nil {
		t.Fatal(err)
	}
	bres, err := epi.Run(0, r)
	if err != nil {
		t.Fatal(err)
	}
	if !bres.Infected {
		t.Fatalf("infection result: %+v", bres)
	}
	phases := cobrawalk.DetectPhases(bres.Sizes, g.N(), 16)
	if phases.Full < 0 {
		t.Fatalf("phases: %+v", phases)
	}
}

func TestFacadeDuality(t *testing.T) {
	g, err := cobrawalk.Petersen()
	if err != nil {
		t.Fatal(err)
	}
	ed, err := cobrawalk.ComputeExactDuality(g, 0, 5, cobrawalk.DefaultBranching)
	if err != nil {
		t.Fatal(err)
	}
	if ed.MaxAbsError() > 1e-10 {
		t.Fatalf("duality error %v", ed.MaxAbsError())
	}
	if cobrawalk.MaxExactVertices < 10 {
		t.Fatal("exact solver limit regressed below Petersen size")
	}
}

func TestFacadeGrowthBound(t *testing.T) {
	g, err := cobrawalk.Complete(16)
	if err != nil {
		t.Fatal(err)
	}
	lambda, err := cobrawalk.LambdaMax(g)
	if err != nil {
		t.Fatal(err)
	}
	set := []int32{0, 1, 2}
	exact, err := cobrawalk.ExactExpectedGrowth(g, 0, set, cobrawalk.DefaultBranching)
	if err != nil {
		t.Fatal(err)
	}
	bound := cobrawalk.Lemma1Bound(3, 16, lambda, cobrawalk.DefaultBranching)
	if exact < bound-1e-9 {
		t.Fatalf("Lemma 1 violated via facade: %v < %v", exact, bound)
	}
}

func TestFacadeBaselines(t *testing.T) {
	g, err := cobrawalk.Complete(32)
	if err != nil {
		t.Fatal(err)
	}
	r := cobrawalk.NewRand(2)
	res, err := cobrawalk.Push(g, 0, cobrawalk.BaselineConfig{}, r)
	if err != nil || !res.Covered {
		t.Fatalf("push: %+v, %v", res, err)
	}
	res, err = cobrawalk.Flood(g, 0, cobrawalk.BaselineConfig{}, r)
	if err != nil || res.Rounds != 1 {
		t.Fatalf("flood: %+v, %v", res, err)
	}
	res, err = cobrawalk.MultiWalkCover(g, 0, 4, cobrawalk.BaselineConfig{}, r)
	if err != nil || !res.Covered {
		t.Fatalf("walks: %+v, %v", res, err)
	}
}

func TestFacadeGraphIO(t *testing.T) {
	g, err := cobrawalk.Cycle(9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cobrawalk.WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	h, err := cobrawalk.ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != 9 || h.M() != 9 {
		t.Fatalf("round trip: %v", h)
	}
}

func TestFacadeSpectrum(t *testing.T) {
	g, err := cobrawalk.Petersen()
	if err != nil {
		t.Fatal(err)
	}
	eig, err := cobrawalk.Spectrum(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(eig) != 10 || math.Abs(eig[0]-1) > 1e-9 {
		t.Fatalf("spectrum: %v", eig)
	}
}

func TestFacadeBuilder(t *testing.T) {
	b := cobrawalk.NewBuilder(3, 3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	g, err := b.Build("triangle")
	if err != nil || g.M() != 3 {
		t.Fatalf("builder: %v, %v", g, err)
	}
}

func TestFacadeWalkTheory(t *testing.T) {
	g, err := cobrawalk.Complete(10)
	if err != nil {
		t.Fatal(err)
	}
	h, err := cobrawalk.ExpectedHittingTimes(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h[5]-9) > 1e-8 {
		t.Fatalf("K10 hitting time = %v, want 9", h[5])
	}
	hit, err := cobrawalk.PairwiseHittingTimes(g)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi, err := cobrawalk.MatthewsBounds(hit)
	if err != nil || lo > hi {
		t.Fatalf("Matthews bounds (%v, %v): %v", lo, hi, err)
	}
	pi, err := cobrawalk.StationaryDistribution(g)
	if err != nil || math.Abs(pi[0]-0.1) > 1e-12 {
		t.Fatalf("stationary: %v, %v", pi, err)
	}
	gini, err := cobrawalk.Gini([]float64{1, 1, 1})
	if err != nil || gini != 0 {
		t.Fatalf("Gini: %v, %v", gini, err)
	}
}

func TestFacadeStreams(t *testing.T) {
	a := cobrawalk.NewRandStream(9, 0)
	b := cobrawalk.NewRandStream(9, 1)
	if a.Uint64() == b.Uint64() {
		t.Fatal("streams look identical")
	}
}

// ExampleNewCobra demonstrates the basic cover-time workflow.
func ExampleNewCobra() {
	g, err := cobrawalk.Complete(64)
	if err != nil {
		panic(err)
	}
	proc, err := cobrawalk.NewCobra(g) // branching k = 2
	if err != nil {
		panic(err)
	}
	res, err := proc.Run(0, cobrawalk.NewRand(1))
	if err != nil {
		panic(err)
	}
	fmt.Println("covered:", res.Covered, "in O(log n) rounds:", res.CoverTime <= 30)
	// Output: covered: true in O(log n) rounds: true
}

// ExampleComputeExactDuality verifies Theorem 4 on a small graph.
func ExampleComputeExactDuality() {
	g, err := cobrawalk.Petersen()
	if err != nil {
		panic(err)
	}
	ed, err := cobrawalk.ComputeExactDuality(g, 0, 6, cobrawalk.DefaultBranching)
	if err != nil {
		panic(err)
	}
	fmt.Println("Theorem 4 max error below 1e-10:", ed.MaxAbsError() < 1e-10)
	// Output: Theorem 4 max error below 1e-10: true
}

// ExampleNewBIPS demonstrates the dual epidemic process.
func ExampleNewBIPS() {
	g, err := cobrawalk.Complete(64)
	if err != nil {
		panic(err)
	}
	epi, err := cobrawalk.NewBIPS(g)
	if err != nil {
		panic(err)
	}
	res, err := epi.Run(0, cobrawalk.NewRand(1))
	if err != nil {
		panic(err)
	}
	fmt.Println("fully infected:", res.Infected, "source in A_0:", res.Sizes[0] == 1)
	// Output: fully infected: true source in A_0: true
}

// TestFacadeStreamingStats exercises the streaming aggregation exports:
// a Digest fed a sample must agree with Summarize on it, and quantile
// sketches must merge exactly.
func TestFacadeStreamingStats(t *testing.T) {
	r := cobrawalk.NewRand(5)
	xs := make([]float64, 5000)
	d := cobrawalk.NewDigest()
	for i := range xs {
		xs[i] = 10 + 100*r.Float64()
		d.Add(xs[i])
	}
	batch, err := cobrawalk.Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	s, err := d.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if s.N != batch.N || s.Min != batch.Min || s.Max != batch.Max {
		t.Fatalf("digest %+v, batch %+v", s, batch)
	}
	if math.Abs(s.Mean-batch.Mean) > 1e-9*batch.Mean {
		t.Fatalf("digest mean %v, batch %v", s.Mean, batch.Mean)
	}
	if math.Abs(s.P95-batch.P95) > 0.03*batch.P95 {
		t.Fatalf("digest p95 %v, batch %v", s.P95, batch.P95)
	}

	sk, err := cobrawalk.NewQuantileSketch(0.02)
	if err != nil {
		t.Fatal(err)
	}
	sk.Add(1)
	sk.Add(2)
	if sk.N() != 2 {
		t.Fatalf("sketch N = %d", sk.N())
	}
	h, err := cobrawalk.NewHistogram(0, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(3)
	h.AddN(7, 2)
	if h.Total() != 3 {
		t.Fatalf("hist total = %d", h.Total())
	}
}

func TestFacadeSweep(t *testing.T) {
	spec := cobrawalk.SweepSpec{
		Families:   []string{"complete"},
		Sizes:      []int{16},
		Processes:  []string{"cobra", "push"},
		Branchings: []cobrawalk.Branching{{K: 2}},
		Trials:     4,
		Seed:       3,
	}
	rep, err := cobrawalk.RunSweep(context.Background(), spec, cobrawalk.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(rep.Results))
	}
	for _, res := range rep.Results {
		s := res.Metric(cobrawalk.SweepMetricRounds)
		if s.N != 4 || s.Mean <= 0 {
			t.Fatalf("point %s: %+v", res.ID, s)
		}
	}
	if len(cobrawalk.SweepFamilies()) == 0 || len(cobrawalk.SweepProcesses()) == 0 || len(cobrawalk.SweepMetrics()) == 0 {
		t.Fatal("empty sweep registries")
	}
	brs, err := cobrawalk.ParseBranchings("1+0.25")
	if err != nil || len(brs) != 1 || brs[0].Rho != 0.25 {
		t.Fatalf("ParseBranchings: %v, %v", brs, err)
	}
	ms, err := cobrawalk.ParseMetrics("rounds,coverage")
	if err != nil || len(ms) != 2 {
		t.Fatalf("ParseMetrics: %v, %v", ms, err)
	}
}

// TestFacadeMetricsCollector drives a collected run through the facade
// exports end to end: collector, trajectory digest, quantile bands.
func TestFacadeMetricsCollector(t *testing.T) {
	g, err := cobrawalk.RandomRegularConnected(64, 4, cobrawalk.NewRand(1))
	if err != nil {
		t.Fatal(err)
	}
	col := cobrawalk.NewMetricsCollector(g.N())
	p, err := cobrawalk.NewProcess("bips", g, cobrawalk.ProcessConfig{Observer: col.Observe})
	if err != nil {
		t.Fatal(err)
	}
	td := cobrawalk.NewTrajectoryDigest()
	r := cobrawalk.NewRand(7)
	for i := 0; i < 5; i++ {
		res, err := cobrawalk.RunProcessCollect(context.Background(), p, col, r, 0, 0)
		if err != nil || !res.Done {
			t.Fatalf("collected run: %+v %v", res, err)
		}
		td.AddTrial(col.Active())
	}
	s, err := td.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if td.N() != 5 || len(s.Rounds) < 2 || s.Mean[0] != 1 {
		t.Fatalf("degenerate trajectory summary %+v", s)
	}
	if s.P50[0] < 0.97 || s.P50[0] > 1.03 { // sketch quantiles are 1%-accurate
		t.Fatalf("start-column p50 = %v, want ≈ 1", s.P50[0])
	}
}
