// Benchmark harness: one benchmark per core reproduction experiment
// (E1-E11; see DESIGN.md §3 and EXPERIMENTS.md for the full E1-E15
// catalogue) plus micro-benchmarks of the hot paths, including the
// streaming aggregation layer (sim.Reduce + stats.Digest). Each experiment
// benchmark exercises the same workload as its internal/expt counterpart
// at a fixed representative size and reports the domain metric (rounds,
// infection time) alongside ns/op, so `go test -bench=. -benchmem`
// regenerates the headline series of every table in EXPERIMENTS.md.
package cobrawalk_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"cobrawalk"
	"cobrawalk/internal/core"
	"cobrawalk/internal/graph"
	"cobrawalk/internal/graphstore"
	"cobrawalk/internal/process"
	"cobrawalk/internal/rng"
	"cobrawalk/internal/sim"
	"cobrawalk/internal/spectral"
	"cobrawalk/internal/stats"
	"cobrawalk/internal/sweep"
)

func buildRandomRegular(b *testing.B, n, deg int) *graph.Graph {
	b.Helper()
	g, err := graph.RandomRegularConnected(n, deg, rng.New(42))
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func benchCover(b *testing.B, g *graph.Graph, branch core.Branching) {
	b.Helper()
	c, err := core.NewCobra(g, core.WithBranching(branch), core.WithMaxRounds(1<<20))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	var rounds int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Run(0, r)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Covered {
			b.Fatal("uncovered run")
		}
		rounds += int64(res.CoverTime)
	}
	b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
}

func benchInfect(b *testing.B, g *graph.Graph, branch core.Branching, opts ...core.Option) {
	b.Helper()
	opts = append([]core.Option{core.WithBranching(branch), core.WithMaxRounds(1 << 20)}, opts...)
	p, err := core.NewBIPS(g, opts...)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	var rounds int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := p.Run(0, r)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Infected {
			b.Fatal("uninfected run")
		}
		rounds += int64(res.InfectionTime)
	}
	b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
}

// BenchmarkE1CobraCoverExpander: Theorem 1 — cover time across degrees at
// fixed n; rounds/op should be ~equal across sub-benchmarks (degree
// independence) and ~logarithmic in n.
func BenchmarkE1CobraCoverExpander(b *testing.B) {
	for _, deg := range []int{3, 8, 16} {
		b.Run(fmt.Sprintf("r=%d/n=4096", deg), func(b *testing.B) {
			benchCover(b, buildRandomRegular(b, 4096, deg), core.DefaultBranching)
		})
	}
	b.Run("complete/n=1024", func(b *testing.B) {
		g, err := graph.Complete(1024)
		if err != nil {
			b.Fatal(err)
		}
		benchCover(b, g, core.DefaultBranching)
	})
}

// BenchmarkE2BipsInfection: Theorem 2 — infection time on the same
// families; duality (Theorem 4) predicts rounds/op tracks E1.
func BenchmarkE2BipsInfection(b *testing.B) {
	for _, deg := range []int{4, 12} {
		b.Run(fmt.Sprintf("r=%d/n=4096", deg), func(b *testing.B) {
			benchInfect(b, buildRandomRegular(b, 4096, deg), core.DefaultBranching)
		})
	}
}

// BenchmarkE3FractionalBranching: Theorem 3 — cover time under branching
// 1+ρ; rounds/op should scale ≈ 1/ρ.
func BenchmarkE3FractionalBranching(b *testing.B) {
	g := buildRandomRegular(b, 2048, 8)
	for _, rho := range []float64{0.1, 0.25, 0.5, 0.9} {
		b.Run(fmt.Sprintf("rho=%.2f", rho), func(b *testing.B) {
			benchCover(b, g, core.Branching{K: 1, Rho: rho})
		})
	}
}

// BenchmarkE4Duality: Theorem 4 — the exact subset-space verification and
// the Monte-Carlo estimator.
func BenchmarkE4Duality(b *testing.B) {
	b.Run("exact/petersen", func(b *testing.B) {
		g, err := graph.Petersen()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ed, err := core.ComputeExactDuality(g, 0, 8, core.DefaultBranching)
			if err != nil {
				b.Fatal(err)
			}
			if ed.MaxAbsError() > 1e-10 {
				b.Fatal("duality violated")
			}
		}
	})
	b.Run("montecarlo/rand-3-reg-128", func(b *testing.B) {
		g := buildRandomRegular(b, 128, 3)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.EstimateDuality(g, 1, 0, 8, 500, core.DefaultBranching, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE5GrowthBound: Lemma 1 — closed-form conditional growth
// evaluation against the spectral bound.
func BenchmarkE5GrowthBound(b *testing.B) {
	g := buildRandomRegular(b, 4096, 8)
	lambda, err := spectral.LambdaMax(g, spectral.Options{})
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(3)
	set, err := core.RandomInfectedSet(g, 0, 512, r)
	if err != nil {
		b.Fatal(err)
	}
	bound := core.Lemma1Bound(len(set), g.N(), lambda, core.DefaultBranching)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exact, err := core.ExactExpectedGrowth(g, 0, set, core.DefaultBranching)
		if err != nil {
			b.Fatal(err)
		}
		if exact < bound-1e-9 {
			b.Fatal("Lemma 1 violated")
		}
	}
}

// BenchmarkE6BipsPhases: Lemmas 2-4 — full trajectory with phase
// detection.
func BenchmarkE6BipsPhases(b *testing.B) {
	g := buildRandomRegular(b, 4096, 8)
	p, err := core.NewBIPS(g, core.WithMaxRounds(1<<20))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := p.Run(0, r)
		if err != nil {
			b.Fatal(err)
		}
		ph := core.DetectPhases(res.Sizes, g.N(), 48)
		if ph.Full < 0 {
			b.Fatal("phase detection failed")
		}
	}
}

// BenchmarkE7LambdaSweep: gap dependence — cover time on a skewed torus
// (small gap) vs a square torus (larger gap).
func BenchmarkE7LambdaSweep(b *testing.B) {
	shapes := [][2]int{{64, 64}, {256, 16}, {1024, 4}}
	for _, s := range shapes {
		b.Run(fmt.Sprintf("torus-%dx%d", s[0], s[1]), func(b *testing.B) {
			g, err := graph.Torus(s[0], s[1])
			if err != nil {
				b.Fatal(err)
			}
			benchCover(b, g, core.DefaultBranching)
		})
	}
}

// BenchmarkE8FamilyScaling: the Dutta et al. families — K_n (log n),
// constant-degree expander (log n, improved from log² n), 2-D torus
// (≈ √n).
func BenchmarkE8FamilyScaling(b *testing.B) {
	b.Run("complete-2048", func(b *testing.B) {
		g, err := graph.Complete(2048)
		if err != nil {
			b.Fatal(err)
		}
		benchCover(b, g, core.DefaultBranching)
	})
	b.Run("rand-3-reg-4096", func(b *testing.B) {
		benchCover(b, buildRandomRegular(b, 4096, 3), core.DefaultBranching)
	})
	b.Run("torus-64x64", func(b *testing.B) {
		g, err := graph.Torus(64, 64)
		if err != nil {
			b.Fatal(err)
		}
		benchCover(b, g, core.DefaultBranching)
	})
}

// BenchmarkE9ProtocolComparison: COBRA vs the baseline broadcast
// protocols on one expander.
func BenchmarkE9ProtocolComparison(b *testing.B) {
	g := buildRandomRegular(b, 2048, 8)
	b.Run("cobra-k2", func(b *testing.B) { benchCover(b, g, core.DefaultBranching) })
	b.Run("push", func(b *testing.B) {
		r := rng.New(1)
		var rounds int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := cobrawalk.Push(g, 0, cobrawalk.BaselineConfig{}, r)
			if err != nil || !res.Covered {
				b.Fatalf("push: %v covered=%v", err, res.Covered)
			}
			rounds += int64(res.Rounds)
		}
		b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
	})
	b.Run("push-pull", func(b *testing.B) {
		r := rng.New(1)
		var rounds int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := cobrawalk.PushPull(g, 0, cobrawalk.BaselineConfig{}, r)
			if err != nil || !res.Covered {
				b.Fatalf("push-pull: %v covered=%v", err, res.Covered)
			}
			rounds += int64(res.Rounds)
		}
		b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
	})
	b.Run("flood", func(b *testing.B) {
		r := rng.New(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if res, err := cobrawalk.Flood(g, 0, cobrawalk.BaselineConfig{}, r); err != nil || !res.Covered {
				b.Fatalf("flood: %v", err)
			}
		}
	})
}

// BenchmarkE10Bipartite: the λ = 1 scope boundary — COBRA still covers
// hypercubes and K_{r,r} fast.
func BenchmarkE10Bipartite(b *testing.B) {
	b.Run("hypercube-12", func(b *testing.B) {
		g, err := graph.Hypercube(12)
		if err != nil {
			b.Fatal(err)
		}
		benchCover(b, g, core.DefaultBranching)
	})
	b.Run("K512,512", func(b *testing.B) {
		g, err := graph.CompleteBipartite(512, 512)
		if err != nil {
			b.Fatal(err)
		}
		benchCover(b, g, core.DefaultBranching)
	})
}

// BenchmarkE11TailDecay: tail sampling for the eq. (1) restart argument —
// one cover run per iteration feeds the empirical survival function.
func BenchmarkE11TailDecay(b *testing.B) {
	benchCover(b, buildRandomRegular(b, 1024, 8), core.DefaultBranching)
}

// --- micro-benchmarks of the hot paths ---

// BenchmarkProcessStep: the unified process layer's hot loop — one full
// collected trial (Reset + Begin + Step to completion from vertex 0,
// default branching) per op for every registered process on a
// 2^14-vertex random-regular graph, with a metrics Collector attached.
// allocs/op is the buffer-reuse pin: a warmed Process+Collector pair
// must run whole trials with zero graph-sized allocations
// (AllocsPerRun-style zero is asserted in internal/process tests; here
// the benchmark reports it so regressions show up in the series). The
// committed baseline lives in BENCH_process.json.
func BenchmarkProcessStep(b *testing.B) {
	g := buildRandomRegular(b, 1<<14, 8)
	starts := []int32{0}
	for _, info := range process.All() {
		b.Run(info.Name, func(b *testing.B) {
			col := process.NewCollector(g.N())
			// Reserve the full round cap so series growth cannot charge a
			// long-tailed trial (kwalk runs Θ(n log n) rounds) with an
			// amortised reallocation mid-measurement.
			col.Reserve(1 << 20)
			p, err := info.New(g, process.Config{Observer: col.Observe})
			if err != nil {
				b.Fatal(err)
			}
			r := rng.New(1)
			trial := func() int {
				res, err := process.RunCollect(nil, p, col, r, 1<<20, starts...)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Done {
					b.Fatal("trial hit the round cap")
				}
				return res.Rounds
			}
			trial() // warm the process buffers so steady-state allocation is measured
			var rounds int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rounds += int64(trial())
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
		})
	}
}

// BenchmarkTrajectoryEnsemble: the trajectory pipeline end to end — a
// 256-trial BIPS ensemble on a 2^12-vertex expander, each trial's
// reached and active series folded through reusable collectors into two
// mergeable TrajectoryDigests, then summarised into per-round
// p10/p50/p90 bands. This is the hot path of a trajectory-enabled sweep
// point and of the data behind /v1/jobs/{id}/trajectories. The committed
// baseline lives in BENCH_trajectory.json.
func BenchmarkTrajectoryEnsemble(b *testing.B) {
	g := buildRandomRegular(b, 1<<12, 8)
	type state struct {
		p   process.Process
		col *process.Collector
	}
	type acc struct {
		coverage, frontier *stats.TrajectoryDigest
	}
	red := sim.Reducer[*process.Collector, acc]{
		New: func() acc {
			return acc{coverage: stats.NewTrajectoryDigest(), frontier: stats.NewTrajectoryDigest()}
		},
		Fold: func(a acc, _ int, col *process.Collector) acc {
			a.coverage.AddTrial(col.Reached())
			a.frontier.AddTrial(col.Active())
			return a
		},
		Merge: func(into, from acc) (acc, error) {
			if err := into.coverage.Merge(from.coverage); err != nil {
				return acc{}, err
			}
			if err := into.frontier.Merge(from.frontier); err != nil {
				return acc{}, err
			}
			return into, nil
		},
	}
	spec := sim.Spec{Trials: 256, Seed: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total, err := sim.ReduceWithState(context.Background(), spec, red,
			func() state {
				col := process.NewCollector(g.N())
				p, err := process.New(process.BIPS, g, process.Config{Observer: col.Observe})
				if err != nil {
					panic(err)
				}
				return state{p: p, col: col}
			},
			func(st state, _ int, r *rng.Rand) (*process.Collector, error) {
				res, err := process.RunCollect(nil, st.p, st.col, r, 1<<20, 0)
				if err != nil {
					return nil, err
				}
				if !res.Done {
					return nil, fmt.Errorf("uninfected trial")
				}
				return st.col, nil
			})
		if err != nil {
			b.Fatal(err)
		}
		s, err := total.coverage.Summary()
		if err != nil {
			b.Fatal(err)
		}
		if s.N[0] != spec.Trials || s.Mean[0] != 1 {
			b.Fatalf("degenerate ensemble: %v trials at start, mean %v", s.N[0], s.Mean[0])
		}
		if i == 0 {
			b.ReportMetric(float64(total.coverage.Columns()), "columns")
		}
	}
}

func BenchmarkCobraStep(b *testing.B) {
	g := buildRandomRegular(b, 65536, 8)
	c, err := core.NewCobra(g)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	if err := c.Reset(0); err != nil {
		b.Fatal(err)
	}
	// Advance to a saturated frontier so steps are representative.
	for i := 0; i < 30; i++ {
		c.Step(r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step(r)
	}
	b.ReportMetric(float64(c.ActiveCount()), "active-set")
}

func BenchmarkBipsStepExact(b *testing.B) {
	benchBipsStep(b)
}

func BenchmarkBipsStepFast(b *testing.B) {
	benchBipsStep(b, core.WithFastSampling())
}

func benchBipsStep(b *testing.B, opts ...core.Option) {
	b.Helper()
	g := buildRandomRegular(b, 65536, 8)
	p, err := core.NewBIPS(g, opts...)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	if err := p.Reset(0); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		p.Step(r)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step(r)
	}
	b.ReportMetric(float64(p.InfectedCount()), "infected")
}

// BenchmarkDigestFold: per-observation cost of the streaming accumulator
// (Welford + min/max + sketch bucket increment) — the inner loop of every
// full-scale ensemble.
func BenchmarkDigestFold(b *testing.B) {
	d := stats.NewDigest()
	r := rng.New(1)
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = 1 + 100*r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Add(xs[i&1023])
	}
}

// BenchmarkReduceEnsemble: the streaming harness end to end — 10⁴ COBRA
// cover trials on a small expander folded into a digest. Allocations per
// op must stay flat as trials grow (O(shards) accumulators, no per-trial
// slice); compare BenchmarkRunEnsemble, whose allocation count scales with
// the trial count.
func BenchmarkReduceEnsemble(b *testing.B) {
	benchEnsemble(b, true)
}

// BenchmarkRunEnsemble: the collect-then-summarise baseline for the same
// workload as BenchmarkReduceEnsemble.
func BenchmarkRunEnsemble(b *testing.B) {
	benchEnsemble(b, false)
}

func benchEnsemble(b *testing.B, streaming bool) {
	b.Helper()
	g := buildRandomRegular(b, 256, 8)
	spec := sim.Spec{Trials: 10000, Seed: 1}
	newCobra := func() *core.Cobra {
		c, err := core.NewCobra(g, core.WithMaxRounds(1<<20))
		if err != nil {
			panic(err)
		}
		return c
	}
	trial := func(c *core.Cobra, _ int, r *rng.Rand) (float64, error) {
		res, err := c.Run(0, r)
		if err != nil {
			return 0, err
		}
		return float64(res.CoverTime), nil
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var mean float64
		if streaming {
			d, err := sim.ReduceWithState(context.Background(), spec,
				sim.DigestReducer(func(x float64) float64 { return x }), newCobra, trial)
			if err != nil {
				b.Fatal(err)
			}
			mean = d.Stream.Mean()
		} else {
			res, err := sim.RunWithState(context.Background(), spec, newCobra, trial)
			if err != nil {
				b.Fatal(err)
			}
			mean = stats.Mean(res)
		}
		if mean <= 0 {
			b.Fatal("degenerate ensemble")
		}
	}
}

// BenchmarkSweep: the declarative sweep engine end to end on a small
// grid with smoke-scale trials — expansion, point scheduling, graph
// construction and the streamed ensembles. Tracks sweep-scheduling
// overhead: compare against the raw ensemble cost in
// BenchmarkReduceEnsemble when the gap matters.
func BenchmarkSweep(b *testing.B) {
	spec := sweep.Spec{
		Name:      "bench",
		Families:  []string{"rand-reg", "complete"},
		Sizes:     []int{64, 128},
		Degrees:   []int{4},
		Processes: []string{sweep.ProcCobra, sweep.ProcPush},
		Trials:    8,
		Seed:      1,
	}
	pts, err := spec.Points()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := sweep.Run(context.Background(), spec, sweep.Options{PointWorkers: 2})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Results) != len(pts) {
			b.Fatalf("got %d results, want %d", len(rep.Results), len(pts))
		}
	}
	b.ReportMetric(float64(len(pts)), "points/op")
}

func BenchmarkLambdaMax(b *testing.B) {
	g := buildRandomRegular(b, 16384, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spectral.LambdaMax(g, spectral.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomRegularGeneration(b *testing.B) {
	r := rng.New(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graph.RandomRegular(16384, 8, r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScaleBaseline is ROADMAP open item 1's n = 10^7 expander
// baseline: one full collected trial per op for the native cobra and
// bips engines on a 10^7-vertex random-regular graph of degree 8 —
// the scale the paper's O(log n) cover-time results become compelling
// at. Building that graph takes minutes and the CSR alone is ~400 MB,
// so the benchmark is opt-in: set COBRAWALK_SCALE_BENCH=1 to run it.
// The committed record lives in BENCH_scale.json.
func BenchmarkScaleBaseline(b *testing.B) {
	if os.Getenv("COBRAWALK_SCALE_BENCH") == "" {
		b.Skip("set COBRAWALK_SCALE_BENCH=1 to run the n=10^7 baseline")
	}
	g := buildRandomRegular(b, 10_000_000, 8)
	starts := []int32{0}
	for _, name := range []string{process.Cobra, process.BIPS} {
		b.Run(name, func(b *testing.B) {
			col := process.NewCollector(g.N())
			col.Reserve(1 << 12)
			p, err := process.New(name, g, process.Config{Observer: col.Observe})
			if err != nil {
				b.Fatal(err)
			}
			r := rng.New(1)
			trial := func() int {
				res, err := process.RunCollect(nil, p, col, r, 1<<12, starts...)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Done {
					b.Fatal("trial hit the round cap")
				}
				return res.Rounds
			}
			trial()
			var rounds int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rounds += int64(trial())
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
		})
	}
}

// BenchmarkScaleParallel measures the parallel round kernel at the
// baseline's n = 10^7 scale: one full collected trial per op for
// cobra-par and bips-par, each at kernel worker counts 1 and
// GOMAXPROCS. The w1 and wN results are byte-identical by the kernel's
// determinism contract (pinned in internal/process/difftest), so the
// ratio between them is pure kernel speedup with zero semantic risk;
// on a single-core runner the two collapse to the same number and the
// interesting figure is w1 vs the sequential baseline — the price of
// the staging+merge structure. Opt-in via COBRAWALK_SCALE_BENCH=1 like
// the baseline; the committed record lives in BENCH_scale.json.
func BenchmarkScaleParallel(b *testing.B) {
	if os.Getenv("COBRAWALK_SCALE_BENCH") == "" {
		b.Skip("set COBRAWALK_SCALE_BENCH=1 to run the n=10^7 parallel-kernel benchmark")
	}
	g := buildRandomRegular(b, 10_000_000, 8)
	starts := []int32{0}
	workerCounts := []int{1, runtime.GOMAXPROCS(0)}
	if workerCounts[1] == 1 {
		workerCounts = workerCounts[:1]
	}
	for _, name := range []string{process.CobraPar, process.BIPSPar} {
		for _, w := range workerCounts {
			b.Run(fmt.Sprintf("%s/w%d", name, w), func(b *testing.B) {
				col := process.NewCollector(g.N())
				col.Reserve(1 << 12)
				p, err := process.New(name, g, process.Config{Observer: col.Observe, KernelWorkers: w})
				if err != nil {
					b.Fatal(err)
				}
				r := rng.New(1)
				trial := func() int {
					res, err := process.RunCollect(nil, p, col, r, 1<<12, starts...)
					if err != nil {
						b.Fatal(err)
					}
					if !res.Done {
						b.Fatal("trial hit the round cap")
					}
					return res.Rounds
				}
				trial()
				var rounds int64
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					rounds += int64(trial())
				}
				b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
				b.ReportMetric(float64(w), "workers")
			})
		}
	}
}

// BenchmarkScaleStoreLoad measures the graph store's load path at the
// same n = 10^7 scale as BenchmarkScaleBaseline: the generator builds the
// expander once (minutes of CPU — reported as generator_s), the store
// file is written next to it, and then "mmap" times graphstore.Mmap of
// the ~400 MB file while "cobra-trial" re-runs the baseline cobra trial
// on the mmap-loaded graph — pinning that zero-copy loading preserves
// the engine's 0 allocs/op and per-trial latency. Opt-in via
// COBRAWALK_SCALE_BENCH=1 like the baseline; the committed record lives
// in BENCH_scale.json.
func BenchmarkScaleStoreLoad(b *testing.B) {
	if os.Getenv("COBRAWALK_SCALE_BENCH") == "" {
		b.Skip("set COBRAWALK_SCALE_BENCH=1 to run the n=10^7 store benchmark")
	}
	buildStart := time.Now()
	g := buildRandomRegular(b, 10_000_000, 8)
	buildSecs := time.Since(buildStart).Seconds()
	path := filepath.Join(b.TempDir(), "scale.csrg")
	if err := graphstore.Write(path, g); err != nil {
		b.Fatal(err)
	}
	g = nil

	var loaded *graph.Graph
	b.Run("mmap", func(b *testing.B) {
		b.ReportMetric(buildSecs, "generator_s")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			loaded, err = graphstore.Mmap(path)
			if err != nil {
				b.Fatal(err)
			}
		}
		if loaded.N() != 10_000_000 {
			b.Fatalf("loaded n = %d", loaded.N())
		}
	})

	// Same load with both madvise hints requested (-graph-madvise
	// willneed,hugepage): the delta against plain mmap is what the
	// advice costs or saves on this kernel/page-cache state.
	b.Run("mmap-advise", func(b *testing.B) {
		adv := graphstore.Advice{WillNeed: true, HugePage: true}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g, err := graphstore.MmapAdvise(path, adv)
			if err != nil {
				b.Fatal(err)
			}
			if g.N() != 10_000_000 {
				b.Fatalf("loaded n = %d", g.N())
			}
		}
	})

	b.Run("cobra-trial", func(b *testing.B) {
		col := process.NewCollector(loaded.N())
		col.Reserve(1 << 12)
		p, err := process.New(process.Cobra, loaded, process.Config{Observer: col.Observe})
		if err != nil {
			b.Fatal(err)
		}
		r := rng.New(1)
		starts := []int32{0} // hoisted: an inline variadic literal costs an alloc per call
		trial := func() int {
			res, err := process.RunCollect(nil, p, col, r, 1<<12, starts...)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Done {
				b.Fatal("trial hit the round cap")
			}
			return res.Rounds
		}
		trial()
		var rounds int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rounds += int64(trial())
		}
		b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
	})
}
