package cobrawalk_test

import (
	"testing"

	"cobrawalk/internal/process"
	"cobrawalk/internal/process/difftest"
	"cobrawalk/internal/rng"
)

// BenchmarkReferenceStep measures the internal/core reference engines
// through the same harness as BenchmarkProcessStep (same graph, same
// collector, same trial shape), so the native-vs-reference speedup can
// be read off one benchmark run instead of reconstructed from git
// history: go test -run NONE -bench 'ProcessStep|ReferenceStep' .
func BenchmarkReferenceStep(b *testing.B) {
	g := buildRandomRegular(b, 1<<14, 8)
	starts := []int32{0}
	for _, name := range []string{process.Cobra, process.BIPS} {
		b.Run(name, func(b *testing.B) {
			col := process.NewCollector(g.N())
			col.Reserve(1 << 20)
			p, err := difftest.Reference(name)(g, process.Config{Observer: col.Observe})
			if err != nil {
				b.Fatal(err)
			}
			r := rng.New(1)
			trial := func() int {
				res, err := process.RunCollect(nil, p, col, r, 1<<20, starts...)
				if err != nil {
					b.Fatal(err)
				}
				return res.Rounds
			}
			trial()
			var rounds int64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rounds += int64(trial())
			}
			b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
		})
	}
}
